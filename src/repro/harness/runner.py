"""Experiment runner: one synthetic-workload measurement per call.

Mirrors the paper's methodology (SS VI-B): warmup cycles excluded from
measurement, Bernoulli injection at a given flits/cycle/node rate, a
static fraction of cores power-gated by the OS, one of the four
mechanisms (baseline / rp / rflov / gflov) active.

Paper-length runs (10k warmup + 100k total) are used when the
``REPRO_FULL`` environment variable is set; the default is a shorter
run that preserves every qualitative trend at pure-Python speed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..gating.schedule import GatingSchedule, StaticGating
from ..noc.network import Network
from ..noc.snapshot import (SNAPSHOT_SCHEMA_VERSION, SnapshotError,
                            check_schema)
from ..noc.stats import LatencyBreakdown
from ..spec import ExperimentSpec
from ..traffic.generator import TrafficGenerator
from ..traffic.patterns import get_pattern


def paper_length() -> bool:
    """True when REPRO_FULL is set: run paper-length simulations."""
    return bool(os.environ.get("REPRO_FULL"))


def default_cycles() -> tuple[int, int]:
    """(warmup, measured) cycle counts."""
    if paper_length():
        return 10_000, 90_000
    return 2_000, 10_000


@dataclass
class ExperimentResult:
    """Everything a figure needs from one simulation run."""

    mechanism: str
    pattern: str
    rate: float
    gated_fraction: float
    warmup: int
    measured_cycles: int
    avg_latency: float
    avg_network_latency: float
    breakdown: LatencyBreakdown
    throughput: float
    packets: int
    escaped: int
    static_w: float
    dynamic_w: float
    total_w: float
    static_j: float
    dynamic_j: float
    total_j: float
    sleeping_routers: int
    gating_events: int
    power_states: dict[str, int] = field(default_factory=dict)
    samples: list[tuple[int, int]] = field(default_factory=list)
    #: path of the structured-event trace written for this run (None
    #: when tracing was off — the default, and the only mode the result
    #: cache ever stores)
    trace_path: str | None = None
    #: scalar metrics snapshot from an attached sampler ({} when off)
    metrics: dict[str, float] = field(default_factory=dict)

    def as_row(self) -> dict[str, float | str | int]:
        return {
            "mechanism": self.mechanism,
            "pattern": self.pattern,
            "rate": self.rate,
            "gated": self.gated_fraction,
            "latency": self.avg_latency,
            "static_w": self.static_w,
            "dynamic_w": self.dynamic_w,
            "total_w": self.total_w,
            "sleeping": self.sleeping_routers,
        }


def run_synthetic(mechanism: str, *, pattern: str = "uniform",
                  pattern_kwargs=None,
                  rate: float = 0.02, gated_fraction: float = 0.0,
                  warmup: int | None = None, measure: int | None = None,
                  seed: int = 1, schedule: GatingSchedule | None = None,
                  keep_samples: bool = False,
                  drain: bool = True,
                  kernel: str | None = None,
                  tracer=None, trace_path: str | None = None,
                  trace_kinds=None,
                  sampler=None, metrics_every: int | None = None,
                  metrics_path: str | None = None,
                  profiler=None,
                  **config_overrides) -> ExperimentResult:
    """Run one synthetic-traffic experiment and collect metrics.

    This legacy keyword signature compiles its arguments into an
    :class:`~repro.spec.ExperimentSpec` and delegates to
    :func:`run_spec` — the spec layer is the implementation, and the
    two entry points are bit-identical by construction (asserted by the
    spec-equivalence test suite).

    ``pattern_kwargs`` are forwarded to the pattern factory (e.g.
    ``{"hotspots": [27], "weight": 0.4}`` for ``hotspot``) and are part
    of the experiment cache key.  ``schedule`` overrides the default
    static gating of ``gated_fraction`` (used by the
    reconfiguration-timeline experiment).  ``kernel`` selects the
    simulation kernel (default: the ``REPRO_KERNEL`` environment
    variable) — results are bit-identical across kernels, so it is
    deliberately *not* part of the experiment cache key.  Extra keyword
    arguments override :class:`~repro.config.NoCConfig` fields.

    Observability (opt-in; see :mod:`repro.obs` and
    ``docs/observability.md``): pass a ``tracer``
    (:class:`~repro.obs.Tracer`) to record structured events, or just a
    ``trace_path`` to have one created and its events written there as
    JSONL (``trace_kinds`` restricts the recorded event kinds).  Pass a
    ``sampler`` (:class:`~repro.obs.NetworkSampler`) or a
    ``metrics_every`` cadence to collect sampled metrics; the final
    scalar snapshot lands in :attr:`ExperimentResult.metrics`, and
    ``metrics_path`` additionally writes the sampled series to disk
    (CSV, or the full registry JSON for ``*.json`` paths).  A
    ``profiler`` (:class:`~repro.obs.KernelProfiler`) accumulates
    per-phase kernel wall time (see ``repro profile`` /
    :func:`repro.obs.profile_run` for the self-contained variant that
    also wall-clocks the kernel externally).  None of these affect
    simulation results — only what gets observed.
    """
    spec = ExperimentSpec(mechanism=mechanism, pattern=pattern,
                          pattern_kwargs=dict(pattern_kwargs or {}),
                          rate=rate, gated_fraction=gated_fraction,
                          warmup=warmup, measure=measure, seed=seed,
                          kernel=kernel, drain=drain,
                          keep_samples=keep_samples,
                          overrides=config_overrides)
    return run_spec(spec, schedule=schedule, tracer=tracer,
                    trace_path=trace_path, trace_kinds=trace_kinds,
                    sampler=sampler, metrics_every=metrics_every,
                    metrics_path=metrics_path, profiler=profiler)


def run_spec(spec: ExperimentSpec, *,
             schedule: GatingSchedule | None = None,
             tracer=None, trace_path: str | None = None,
             trace_kinds=None,
             sampler=None, metrics_every: int | None = None,
             metrics_path: str | None = None,
             profiler=None,
             checkpoint_every: int | None = None,
             checkpoint_dir=None,
             resume_from=None,
             interrupt=None) -> ExperimentResult:
    """Execute an :class:`~repro.spec.ExperimentSpec`.

    The spec compiles to exactly the calls the legacy
    :func:`run_synthetic` signature made — same construction order,
    same seeds — so results are bit-identical between the two entry
    points (and therefore cache-compatible).

    ``schedule`` (a live :class:`GatingSchedule` object) overrides both
    the spec's declarative ``schedule`` mapping and its
    ``gated_fraction``.  The observability keywords mirror
    :func:`run_synthetic` — they are runtime attachments, not part of
    the spec or its cache key.

    Checkpointing: ``checkpoint_every=N`` writes an atomic snapshot of
    the complete simulation state into ``checkpoint_dir`` every N
    cycles (and removes it when the run completes).  ``resume_from``
    (a checkpoint file path or an already-loaded payload dict)
    continues such a run where it stopped; the golden contract —
    enforced by ``tests/test_checkpoint.py`` — is that *run-to-horizon*
    and *checkpoint + restore + run-remainder* produce identical
    results, on either kernel.  A missing or unreadable checkpoint
    file downgrades to a fresh run with a warning; a payload for a
    different spec or a stale schema raises
    :class:`~repro.noc.snapshot.SnapshotError`.  ``interrupt`` (a
    zero-arg callable polled at every checkpoint boundary) stops the
    run cooperatively: when it returns true, the just-written
    checkpoint is left in place and
    :class:`~repro.harness.checkpoint.CheckpointInterrupt` is raised —
    the service's preemption path.

    Specs with ``workload=`` set describe a full-system PARSEC run and
    return a :class:`~repro.fullsystem.FullSystemResult` instead.
    """
    if spec.workload is not None:
        from ..fullsystem import CmpSystem
        wargs = dict(spec.workload_args)
        system = CmpSystem(spec.workload, spec.mechanism,
                           instructions_per_core=wargs.get(
                               "instructions", 2000),
                           seed=spec.seed,
                           noc_overrides=dict(spec.overrides))
        return system.run(max_cycles=wargs.get("max_cycles", 400_000),
                          warmup=wargs.get("warmup", 0))

    spec = spec.resolved()
    warmup, measure = spec.warmup, spec.measure
    mechanism, pattern, rate = spec.mechanism, spec.pattern, spec.rate
    gated_fraction, seed = spec.gated_fraction, spec.seed
    keep_samples, drain = spec.keep_samples, spec.drain

    cfg = spec.config()
    net = Network(cfg, keep_samples=keep_samples, kernel=spec.kernel)
    if tracer is None and (trace_path is not None or trace_kinds is not None):
        from ..obs import Tracer
        tracer = Tracer(kinds=trace_kinds)
    if tracer is not None:
        net.attach_tracer(tracer)
    if sampler is None and (metrics_every is not None
                            or metrics_path is not None):
        from ..obs import DEFAULT_EVERY, NetworkSampler
        sampler = NetworkSampler(
            net, every=DEFAULT_EVERY if metrics_every is None
            else metrics_every)
    if sampler is not None:
        net.attach_metrics(sampler)
    if profiler is not None:
        net.attach_profiler(profiler)
    gen = TrafficGenerator(net, get_pattern(pattern, cfg,
                                            **dict(spec.pattern_kwargs)),
                           rate, seed=seed)

    # -- checkpoint / resume bookkeeping ----------------------------------
    payload = None
    if resume_from is not None:
        if isinstance(resume_from, dict):
            payload = resume_from
            check_schema(payload, kind="run_spec")
        else:
            from .checkpoint import load_checkpoint
            payload = load_checkpoint(resume_from, kind="run_spec")
    phase, done = "warmup", 0
    drain_steps = drain_idle = 0
    rep = None
    if payload is not None:
        from ..power.accounting import EnergyReport
        if payload.get("spec_key") != spec.cache_key():
            raise SnapshotError(
                "checkpoint was taken for a different experiment spec")
        net.restore_state(payload["net"])
        gen.restore_state(payload["traffic"])
        phase, done = payload["phase"], payload["done"]
        drain_steps = payload["drain_steps"]
        drain_idle = payload["drain_idle"]
        if payload["report"] is not None:
            rep = EnergyReport(**payload["report"])
    else:
        # restored runs install the snapshot's flattened schedule instead
        # (mechanism reactions to past changes live in component state,
        # so set_gating's on_schedule_change must not fire again)
        if schedule is None:
            schedule = spec.build_schedule(cfg)
        if schedule is None:
            schedule = StaticGating(cfg.num_routers, gated_fraction,
                                    seed=seed)
        net.set_gating(schedule)

    ckpt_path = None
    if checkpoint_every:
        from .checkpoint import (CheckpointInterrupt, checkpoint_path,
                                 write_checkpoint)
        ckpt_path = checkpoint_path(checkpoint_dir, spec)

        def save(phase: str, done: int, rep) -> None:
            write_checkpoint(ckpt_path, {
                "schema": SNAPSHOT_SCHEMA_VERSION,
                "kind": "run_spec",
                "spec": spec.to_dict(),
                "spec_key": spec.cache_key(),
                "phase": phase,
                "done": done,
                "drain_steps": drain_steps,
                "drain_idle": drain_idle,
                "report": None if rep is None else {
                    "cycles": rep.cycles, "static_j": rep.static_j,
                    "dynamic_j": rep.dynamic_j, "gating_j": rep.gating_j},
                "traffic": gen.snapshot_state(),
                "net": net.snapshot_state(),
            })
            if interrupt is not None and interrupt():
                raise CheckpointInterrupt(ckpt_path)

    # -- phase-tracked simulation loop ------------------------------------
    # equivalent to gen.run(warmup); begin_measurement(); gen.run(measure);
    # report(); drain — with checkpoints allowed between any two cycles
    if phase == "warmup":
        for i in range(done, warmup):
            gen.tick()
            net.step()
            if ckpt_path is not None and net.cycle % checkpoint_every == 0:
                save("warmup", i + 1, None)
        net.begin_measurement()
        phase, done = "measure", 0
    if phase == "measure":
        for i in range(done, measure):
            gen.tick()
            net.step()
            if ckpt_path is not None and net.cycle % checkpoint_every == 0:
                save("measure", i + 1, None)
        # snapshot energy for exactly the measured window, then let
        # in-flight measured packets finish (latency stats are keyed by
        # create time)
        rep = net.accountant.report(warmup + measure)
        phase = "drain"
    if drain and phase == "drain":
        while drain_steps < 20_000:
            net.step()
            drain_steps += 1
            drain_idle = drain_idle + 1 if net.network_drained() else 0
            if drain_idle > 8:
                break
            if ckpt_path is not None and net.cycle % checkpoint_every == 0:
                save("drain", 0, rep)
    if ckpt_path is not None:
        # completed: the checkpoint would resume into a finished run
        try:
            os.unlink(ckpt_path)
        except OSError:
            pass

    stats = net.stats
    power = rep.power_w(net.pcfg.cycle_time_s)
    states = net.power_states()
    if sampler is not None:
        # final flush: capture the trailing partial window the cadence
        # would otherwise drop (duck-typed so any on_cycle-compatible
        # object without close() still works)
        close = getattr(sampler, "close", None)
        if close is not None:
            close(net.cycle)
    if tracer is not None and trace_path is not None:
        from ..obs import write_jsonl
        write_jsonl(tracer.events(), trace_path)
    metrics = (dict(sampler.registry.scalar_snapshot())
               if sampler is not None else {})
    if sampler is not None and metrics_path is not None:
        from ..obs import write_metrics_csv, write_metrics_json
        if metrics_path.endswith(".json"):
            write_metrics_json(sampler.registry, metrics_path)
        else:
            write_metrics_csv(sampler.registry, metrics_path)
    return ExperimentResult(
        mechanism=mechanism,
        pattern=pattern,
        rate=rate,
        gated_fraction=gated_fraction,
        warmup=warmup,
        measured_cycles=measure,
        avg_latency=stats.avg_latency,
        avg_network_latency=stats.avg_network_latency,
        breakdown=stats.breakdown(cfg.packet_size),
        throughput=stats.throughput(measure, cfg.num_routers),
        packets=stats.measured_packets,
        escaped=stats.escaped_packets,
        static_w=power["static"],
        dynamic_w=power["dynamic"],
        total_w=power["total"],
        static_j=rep.static_j,
        dynamic_j=rep.dynamic_j + rep.gating_j,
        total_j=rep.total_j,
        sleeping_routers=states.get("SLEEP", 0),
        gating_events=net.accountant.gating_events,
        power_states=states,
        samples=list(stats.samples) if keep_samples else [],
        trace_path=trace_path,
        metrics=metrics,
    )
