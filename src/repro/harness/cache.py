"""Content-addressed on-disk cache for experiment results.

Every synthetic-traffic experiment is fully determined by its
:class:`~repro.spec.ExperimentSpec` — the simulator is deterministic
for a fixed seed — so a result computed once never needs to be
recomputed.  The cache keys each run by a SHA-256 digest of the spec's
:meth:`~repro.spec.ExperimentSpec.cache_key` canonical-JSON encoding
and stores one small JSON file per result under
``.repro_cache/<aa>/<digest>.json`` (``aa`` = first two hex digits, to
keep directories small).

Compatibility: the spec's key layout is byte-identical to the pre-spec
``(NoCConfig, pattern, rate, gated_fraction, seed, warmup, measure,
drain, keep_samples)`` dict whenever the newer spec fields (pattern
kwargs, declarative schedule, workload) are unused, so cache entries
written before the spec layer keep hitting; runs that do use the new
fields append them to the key and therefore version themselves into
fresh digests automatically.

Environment knobs
-----------------

``REPRO_NO_CACHE=1``
    Bypass the cache entirely (no reads, no writes).
``REPRO_CACHE_DIR=<path>``
    Root directory for cache files (default ``.repro_cache`` in the
    current working directory).

Corrupted or schema-incompatible cache files are discarded with a
warning and recomputed — never a crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Any

from ..atomicio import atomic_write_json, read_json_checked
from ..noc.stats import LatencyBreakdown
from .runner import ExperimentResult

__all__ = ["CACHE_SCHEMA_VERSION", "ResultCache", "atomic_write_json",
           "cache_enabled", "default_cache_dir", "result_from_dict",
           "result_to_dict", "spec_digest", "stable_digest"]

#: bump when the ExperimentResult schema or simulator semantics change
#: incompatibly; old cache entries are then ignored.
CACHE_SCHEMA_VERSION = 1

DEFAULT_CACHE_DIR = ".repro_cache"


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` is set (cache fully bypassed)."""
    return not os.environ.get("REPRO_NO_CACHE")


def default_cache_dir() -> str:
    """Cache root: ``REPRO_CACHE_DIR`` or ``.repro_cache``."""
    return os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR


def stable_digest(key: dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON encoding of ``key``.

    Stable across processes and Python invocations (keys sorted, no
    whitespace, no hash randomization involvement).
    """
    blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def spec_digest(spec) -> str:
    """Cache digest of an :class:`~repro.spec.ExperimentSpec`.

    This is the digest the engine stores the spec's result under —
    ``stable_digest(spec.cache_key())``.  Note it deliberately differs
    from :meth:`~repro.spec.ExperimentSpec.stable_hash` (a hash of the
    *complete* spec): the cache key excludes ``kernel`` (kernels are
    bit-identical) and omits unused new fields for backward
    compatibility with pre-spec cache entries.
    """
    return stable_digest(spec.cache_key())


# -- ExperimentResult <-> JSON ------------------------------------------------

def result_to_dict(r: ExperimentResult) -> dict[str, Any]:
    """Lossless JSON-serializable encoding of an :class:`ExperimentResult`."""
    return {
        "mechanism": r.mechanism,
        "pattern": r.pattern,
        "rate": r.rate,
        "gated_fraction": r.gated_fraction,
        "warmup": r.warmup,
        "measured_cycles": r.measured_cycles,
        "avg_latency": r.avg_latency,
        "avg_network_latency": r.avg_network_latency,
        "breakdown": {
            "router": r.breakdown.router,
            "link": r.breakdown.link,
            "serialization": r.breakdown.serialization,
            "flov": r.breakdown.flov,
            "contention": r.breakdown.contention,
        },
        "throughput": r.throughput,
        "packets": r.packets,
        "escaped": r.escaped,
        "static_w": r.static_w,
        "dynamic_w": r.dynamic_w,
        "total_w": r.total_w,
        "static_j": r.static_j,
        "dynamic_j": r.dynamic_j,
        "total_j": r.total_j,
        "sleeping_routers": r.sleeping_routers,
        "gating_events": r.gating_events,
        "power_states": dict(r.power_states),
        "samples": [list(s) for s in r.samples],
        "trace_path": r.trace_path,
        "metrics": dict(r.metrics),
    }


def result_from_dict(data: dict[str, Any]) -> ExperimentResult:
    """Inverse of :func:`result_to_dict` (bit-identical round-trip).

    Entries written before the observability fields existed simply fall
    back to the dataclass defaults (``trace_path=None``, ``metrics={}``)
    — no schema bump needed, since absence and default agree."""
    d = dict(data)
    d["breakdown"] = LatencyBreakdown(**d["breakdown"])
    d["power_states"] = dict(d["power_states"])
    d["samples"] = [tuple(s) for s in d["samples"]]
    if "metrics" in d:
        d["metrics"] = dict(d["metrics"])
    return ExperimentResult(**d)


class ResultCache:
    """Content-addressed store of experiment results on disk.

    ``get``/``put`` take the *key dict* (see
    :meth:`repro.harness.parallel.SweepTask.cache_key`); the digest and
    file layout are internal.  Hit/miss counters are kept for progress
    reporting.
    """

    def __init__(self, root: str | os.PathLike[str] | None = None) -> None:
        self.root = Path(root if root is not None else default_cache_dir())
        self.hits = 0
        self.misses = 0

    # -- layout --------------------------------------------------------------

    def path_for(self, key: dict[str, Any]) -> Path:
        digest = stable_digest(key)
        return self.root / digest[:2] / f"{digest}.json"

    # -- operations ----------------------------------------------------------

    def get(self, key: dict[str, Any], *, tracer: Any | None = None,
            parent: Any | None = None) -> ExperimentResult | None:
        """Cached result for ``key``, or None.

        A file that cannot be parsed or fails basic shape checks is
        removed with a warning and treated as a miss.  With a
        :class:`~repro.obs.spans.SpanTracer` (and optional parent
        context) the lookup is recorded as a ``cache.probe`` span with
        a ``cache.hit`` attribute; untraced probes pay only the keyword
        default.
        """
        if tracer is not None:
            with tracer.span("cache.probe", parent=parent) as sp:
                result = self._get(key)
                sp.set_attribute("cache.hit", result is not None)
            return result
        return self._get(key)

    def _get(self, key: dict[str, Any]) -> ExperimentResult | None:
        decoded: list[ExperimentResult] = []

        def check(payload: Any) -> None:
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError(f"schema {payload.get('schema')!r} != "
                                 f"{CACHE_SCHEMA_VERSION}")
            decoded.append(result_from_dict(payload["result"]))

        payload = read_json_checked(self.path_for(key), label="cache entry",
                                    check=check)
        if payload is None or not decoded:
            self.misses += 1
            return None
        self.hits += 1
        return decoded[0]

    def put(self, key: dict[str, Any], result: ExperimentResult) -> Path:
        """Atomically persist ``result`` under ``key``; returns the path."""
        path = self.path_for(key)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "result": result_to_dict(result),
        }
        atomic_write_json(path, payload)
        return path

    def clear(self) -> None:
        """Remove every cache entry (and the root directory)."""
        shutil.rmtree(self.root, ignore_errors=True)

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
