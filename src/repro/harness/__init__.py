"""Experiment harness: runners, sweeps, and figure-shaped table output."""
from .runner import ExperimentResult, default_cycles, paper_length, run_synthetic
from .sweep import (FIGURE_FRACTIONS, FIGURE_MECHANISMS, FIGURE_RATES,
                    sweep_fractions, sweep_rates)
from .ascii_plot import bar_chart, line_chart, sparkline
from .tables import breakdown_table, normalized_table, series_table, timeline_table

__all__ = [
    "run_synthetic", "ExperimentResult", "default_cycles", "paper_length",
    "sweep_fractions", "sweep_rates",
    "FIGURE_MECHANISMS", "FIGURE_FRACTIONS", "FIGURE_RATES",
    "series_table", "breakdown_table", "normalized_table", "timeline_table",
    "line_chart", "bar_chart", "sparkline",
]
