"""Experiment harness: runners, sweeps, parallel engine, result cache,
and figure-shaped table output."""
from .runner import (ExperimentResult, default_cycles, paper_length,
                     run_spec, run_synthetic)
from .cache import (CACHE_SCHEMA_VERSION, ResultCache, cache_enabled,
                    default_cache_dir, result_from_dict, result_to_dict,
                    spec_digest, stable_digest)
from .parallel import (BatchedExecutor, BatchedSweep, Executor,
                       ParallelSweep, PoolExecutor, SerialExecutor,
                       SweepTask, batch_group_key, default_jobs,
                       default_task_timeout, derive_task_seed)
from .sweep import (FIGURE_FRACTIONS, FIGURE_MECHANISMS, FIGURE_RATES,
                    run_sweep_spec, sweep_fractions, sweep_rates)
from .ascii_plot import bar_chart, heat_grid, line_chart, sparkline
from .benchdiff import (BenchDiff, CellDiff, MetricDelta, check_cells,
                        diff_bench, load_bench, load_bench_source)
from .tables import breakdown_table, normalized_table, series_table, timeline_table

__all__ = [
    "run_synthetic", "run_spec", "ExperimentResult", "default_cycles",
    "paper_length",
    "BatchedSweep", "ParallelSweep", "SweepTask", "default_jobs",
    "default_task_timeout", "derive_task_seed",
    "Executor", "SerialExecutor", "PoolExecutor", "BatchedExecutor",
    "batch_group_key",
    "ResultCache", "cache_enabled", "default_cache_dir", "stable_digest",
    "spec_digest",
    "result_to_dict", "result_from_dict", "CACHE_SCHEMA_VERSION",
    "sweep_fractions", "sweep_rates", "run_sweep_spec",
    "FIGURE_MECHANISMS", "FIGURE_FRACTIONS", "FIGURE_RATES",
    "series_table", "breakdown_table", "normalized_table", "timeline_table",
    "line_chart", "bar_chart", "sparkline", "heat_grid",
    "BenchDiff", "CellDiff", "MetricDelta", "diff_bench", "load_bench",
    "load_bench_source", "check_cells",
]
