"""Append-only job journal: the service's job table, durable on disk.

One JSONL file (``<state-dir>/jobs.jsonl``) records every lifecycle
transition as it happens — ``submit`` (with the full validated
envelope), ``start``, ``preempt``, ``finish`` — through the same
torn-line-tolerant append path the checkpoint layer uses
(:mod:`repro.atomicio`).  At boot the service replays the journal to
rebuild its job table: terminal jobs come back with their status (and,
when every cell is still in the result store, their result payload);
queued/preempted jobs go back into the queue; jobs a dead process left
``running`` are either requeued (checkpoints + cache make the rerun
resume where it stopped) or stamped ``interrupted`` when resumption is
disabled.

The journal is an event log, not a snapshot: replay is a pure fold over
the records, so a crash between an event and its append loses at most
that one transition — a job then replays in its previous state, which
every consumer already tolerates (re-running a finished cell is a cache
hit; re-finishing a cancelled job is idempotent).
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..atomicio import append_jsonl, read_jsonl
from ..spec import JobEnvelope, SpecError
from .jobs import DONE, PREEMPTED, RUNNING, Job, JobStore

if TYPE_CHECKING:  # pragma: no cover
    import os

__all__ = ["JobJournal"]

JOURNAL_NAME = "jobs.jsonl"


class JobJournal:
    """Durable job-event log under a service ``--state-dir``."""

    def __init__(self, state_dir: "str | os.PathLike[str]") -> None:
        self.path = Path(state_dir) / JOURNAL_NAME

    # -- recording ------------------------------------------------------------

    def _record(self, event: str, job: Job, **extra: Any) -> None:
        entry: dict[str, Any] = {"event": event, "job": job.id}
        entry.update(extra)
        append_jsonl(self.path, entry)

    def submit(self, job: Job) -> None:
        self._record("submit", job, envelope=job.envelope.to_dict())

    def start(self, job: Job) -> None:
        self._record("start", job)

    def preempt(self, job: Job) -> None:
        self._record("preempt", job, done=job.done_cells)

    def finish(self, job: Job) -> None:
        digest = (job.result or {}).get("digest")
        self._record("finish", job, status=job.status, error=job.error,
                     digest=digest)

    # -- replay ---------------------------------------------------------------

    def replay(self, store: JobStore) -> list[Job]:
        """Rebuild journaled jobs into ``store``; returns them in order.

        Each job comes back in its last recorded state (``running``
        means the recording process died mid-run); the caller decides
        how to dispose of the non-terminal ones.  A ``finish`` record's
        digest is parked on ``job.result`` so a replayed success still
        reports its digest even when the cells have left the cache.
        """
        jobs: dict[str, Job] = {}
        for entry in read_jsonl(self.path, label="job journal"):
            if not isinstance(entry, dict):
                continue
            kind = entry.get("event")
            jid = entry.get("job")
            if kind == "submit":
                try:
                    envelope = JobEnvelope.from_dict(entry["envelope"])
                    jobs[jid] = store.restore_job(jid, envelope)
                except (SpecError, KeyError, TypeError, ValueError) as exc:
                    warnings.warn(f"skipping unreplayable job {jid!r} in "
                                  f"{self.path}: {exc}", RuntimeWarning,
                                  stacklevel=2)
                continue
            job = jobs.get(jid)
            if job is None:
                continue
            if kind == "start":
                job.status = RUNNING
            elif kind == "preempt":
                job.status = PREEMPTED
                job.preemptions += 1
                job.done_cells = entry.get("done", job.done_cells)
            elif kind == "finish":
                job.status = entry.get("status", DONE)
                job.error = entry.get("error")
                if entry.get("digest") is not None:
                    job.result = {"digest": entry["digest"]}
        return [jobs[j] for j in sorted(jobs, key=lambda i: jobs[i].seq)]
