"""Priority job queue for the experiment service.

A tiny asyncio-native priority queue with lazy cancellation: higher
``priority`` wins, FIFO within a priority level (submission sequence
breaks ties), and cancelling a queued entry marks it dead in place —
dead entries are skipped (and discarded) when popped, so cancellation
is O(1) and the heap never needs re-building.

The synchronous core (:meth:`put` / :meth:`try_get` / :meth:`cancel`)
is fully deterministic and directly testable — the adversarial
submit/cancel soak in ``tests/test_service_concurrency.py`` drives it
against a reference model; :meth:`get` adds the asyncio wait that the
service's worker loops block on.
"""

from __future__ import annotations

import asyncio
import heapq

__all__ = ["JobQueue"]


class JobQueue:
    """Priority-ordered queue of job ids with O(1) cancellation."""

    def __init__(self) -> None:
        #: heap of (-priority, seq, job_id): min-heap → highest priority
        #: first, then lowest sequence number (FIFO within a priority)
        self._heap: list[tuple[int, int, str]] = []
        self._queued: set[str] = set()
        self._seq = 0
        self._wakeup = asyncio.Event()

    # -- synchronous core ----------------------------------------------------

    def put(self, job_id: str, priority: int = 0) -> None:
        """Enqueue ``job_id``; re-queuing a queued id is an error."""
        if job_id in self._queued:
            raise ValueError(f"job {job_id!r} is already queued")
        heapq.heappush(self._heap, (-priority, self._seq, job_id))
        self._seq += 1
        self._queued.add(job_id)
        self._wakeup.set()

    def cancel(self, job_id: str) -> bool:
        """Mark a queued entry dead; True if it was actually queued."""
        if job_id not in self._queued:
            return False
        self._queued.discard(job_id)
        return True

    def try_get(self) -> str | None:
        """Pop the highest-priority live entry, or None when empty.

        Dead (cancelled) heap entries encountered on the way are
        discarded for good.
        """
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            if job_id in self._queued:
                self._queued.discard(job_id)
                return job_id
        return None

    def __len__(self) -> int:
        """Live (non-cancelled) queued entries."""
        return len(self._queued)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._queued

    # -- asyncio wait --------------------------------------------------------

    async def get(self) -> str:
        """Wait for and pop the highest-priority live entry."""
        while True:
            job_id = self.try_get()
            if job_id is not None:
                return job_id
            self._wakeup.clear()
            await self._wakeup.wait()
