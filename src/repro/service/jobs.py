"""Job model and in-memory store for the experiment service.

A :class:`Job` wraps one validated :class:`~repro.spec.JobEnvelope`
with its lifecycle state.  The state machine::

    queued ──> running ──> done
       │        │ ↑  └───> failed
       │        │ │ └────> cancelled
       │        └─│──────> preempted ──> cancelled
       │          └───────────┘
       ├─────────────────> cancelled
       ├─────────────────> interrupted  (service restarted mid-run with
       │                                 no way to resume the job)
       └─────────────────> cache_hit    (all cells already in the store,
                                         or deduped behind an identical
                                         in-flight job that completed)

``cache_hit`` is a first-class terminal status, not a flavor of
``done``: it means the service recomputed *nothing* for this job, which
is exactly the multi-tenant signal the ``/metrics`` endpoint counts.
``preempted`` is *non*-terminal: the job was checkpointed out of its
worker (``DELETE /jobs/<id>?preempt=true``) and sits in the queue
again; when re-dequeued it resumes from its cells' checkpoints and the
result cache.  ``interrupted`` is the terminal cousin stamped at boot
replay on jobs a dead service left running with resumption disabled.

Jobs also carry their own SSE event history (``events``): every status
change and per-cell progress tick is appended with a monotonically
increasing ``id``, so a subscriber that connects late replays the full
ordered stream before going live — streams are complete by
construction.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..spec import JobEnvelope

__all__ = ["Job", "JobStore", "JobCancelled", "JobPreempted", "QUEUED",
           "RUNNING", "PREEMPTED", "DONE", "FAILED", "CANCELLED",
           "CACHE_HIT", "INTERRUPTED", "TERMINAL_STATES"]

QUEUED = "queued"
RUNNING = "running"
PREEMPTED = "preempted"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
CACHE_HIT = "cache_hit"
INTERRUPTED = "interrupted"

#: states a job never leaves
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED, CACHE_HIT,
                             INTERRUPTED})

#: terminal states that carry a result payload
SUCCESS_STATES = frozenset({DONE, CACHE_HIT})


class JobCancelled(Exception):
    """Raised inside a worker when its job's cancel flag is observed."""


class JobPreempted(Exception):
    """Raised inside a worker when its job's preempt flag is observed
    at a cell boundary (mid-cell preemption surfaces as
    :class:`~repro.harness.checkpoint.CheckpointInterrupt` instead)."""


@dataclass
class Job:
    """One submitted job and all of its lifecycle state."""

    id: str
    envelope: JobEnvelope
    seq: int
    status: str = QUEUED
    total_cells: int = 0
    done_cells: int = 0
    #: cells served from the shared result store instead of recomputed
    cache_hit_cells: int = 0
    #: job id this submission was deduplicated behind (None = primary)
    dedup_of: str | None = None
    #: follower job ids deduplicated behind this one
    followers: list[str] = field(default_factory=list)
    result: dict[str, Any] | None = None
    error: str | None = None
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    #: global order in which jobs entered RUNNING (None = never ran)
    started_seq: int | None = None
    #: set by the cancellation endpoint; observed by the worker thread
    #: between cells
    cancel_requested: threading.Event = field(default_factory=threading.Event)
    #: set by ``DELETE ?preempt=true``; observed at cell boundaries and
    #: (for in-process executors) at checkpoint boundaries mid-cell
    preempt_requested: threading.Event = field(
        default_factory=threading.Event)
    #: times this job was checkpointed out of a worker and requeued
    preemptions: int = 0
    #: ordered SSE history: {"id": n, "event": kind, "data": {...}}
    events: list[dict[str, Any]] = field(default_factory=list)
    #: live SSE subscribers (asyncio.Queue instances)
    subscribers: list[Any] = field(default_factory=list)
    #: per-job distributed trace state (repro.obs.spans.SpanTracer /
    #: Span); owned by the service, exposed via GET /jobs/<id>/trace
    span_tracer: Any = None
    root_span: Any = None
    #: open queue.wait (or dedupe.parked) span, ended at dequeue
    queue_span: Any = None
    #: monotonic clock at enqueue; the queue-wait histogram observes
    #: (dequeue - this)
    enqueued_at: float | None = None
    queue_wait_s: float | None = None

    def end_queue_span(self) -> None:
        """Close the open queue-phase span, if any (idempotent)."""
        if self.queue_span is not None:
            self.queue_span.end()
            self.queue_span = None

    @property
    def priority(self) -> int:
        return self.envelope.priority

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def snapshot(self) -> dict[str, Any]:
        """Public JSON view of the job (the ``GET /jobs/<id>`` body)."""
        out: dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            "priority": self.priority,
            "tags": dict(self.envelope.tags),
            "total_cells": self.total_cells,
            "done_cells": self.done_cells,
            "cache_hit_cells": self.cache_hit_cells,
            "dedup_of": self.dedup_of,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "started_seq": self.started_seq,
            "preemptions": self.preemptions,
            "error": self.error,
        }
        if self.result is not None:
            out["digest"] = self.result.get("digest")
        if self.root_span is not None:
            out["trace_id"] = self.root_span.context.trace_id
        if self.queue_wait_s is not None:
            out["queue_wait_s"] = self.queue_wait_s
        return out


class JobStore:
    """In-memory registry of jobs plus the in-flight dedupe index."""

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}
        self._seq = 0
        self._run_seq = 0
        #: dedupe_key -> primary job id currently queued/running
        self.inflight: dict[str, str] = {}

    def new_job(self, envelope: JobEnvelope) -> Job:
        self._seq += 1
        job = Job(id=f"j{self._seq:06d}", envelope=envelope, seq=self._seq,
                  total_cells=len(envelope.cells()))
        self._jobs[job.id] = job
        return job

    def restore_job(self, job_id: str, envelope: JobEnvelope) -> Job:
        """Recreate a journaled job under its original id (boot replay).

        Advances the id sequence past the restored id so jobs submitted
        after recovery never collide with journaled ones.
        """
        seq = int(job_id.lstrip("j"))
        self._seq = max(self._seq, seq)
        job = Job(id=job_id, envelope=envelope, seq=seq,
                  total_cells=len(envelope.cells()))
        self._jobs[job_id] = job
        return job

    def next_run_seq(self) -> int:
        """Monotone counter stamped on jobs as they enter RUNNING."""
        self._run_seq += 1
        return self._run_seq

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """All jobs in submission order."""
        return sorted(self._jobs.values(), key=lambda j: j.seq)

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs
