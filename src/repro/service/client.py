"""Blocking HTTP client for the experiment service.

A thin ``http.client`` wrapper (stdlib only, like the server) used by
``repro submit``, the test-suite, and the CI smoke job.  Every method
maps 1:1 onto a service endpoint; non-2xx responses raise
:class:`ServiceError` carrying the status code and the server's
``error`` message.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator

from .sse import decode_stream

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx service response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Synchronous client for one service instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, *,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: bytes | None = None,
                 content_type: str | None = None) -> Any:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {}
            if content_type is not None:
                headers["Content-Type"] = content_type
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            ctype = resp.headers.get("Content-Type", "")
            payload: Any
            if "json" in ctype:
                payload = json.loads(raw.decode())
            else:
                payload = raw.decode()
            if resp.status >= 400:
                message = payload.get("error", str(payload)) \
                    if isinstance(payload, dict) else str(payload)
                raise ServiceError(resp.status, message)
            return payload
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit_text(self, text: str, *, toml: bool = False,
                    priority: int | None = None) -> dict:
        """Submit a raw spec/envelope payload; returns the job snapshot."""
        path = "/jobs" if priority is None else f"/jobs?priority={priority}"
        ctype = "application/toml" if toml else "application/json"
        return self._request("POST", path, text.encode(), ctype)

    def submit(self, payload: dict, *, priority: int | None = None) -> dict:
        """Submit a spec/envelope mapping; returns the job snapshot."""
        return self.submit_text(json.dumps(payload), priority=priority)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def preempt(self, job_id: str) -> dict:
        """Checkpoint a running job out of its worker and requeue it
        (``DELETE ?preempt=true``); 409 unless the job is running."""
        return self._request("DELETE", f"/jobs/{job_id}?preempt=true")

    def metrics(self) -> dict:
        """The full structured metrics document (``?format=json``)."""
        return self._request("GET", "/metrics?format=json")

    def metrics_text(self) -> str:
        """The plain-text ``name value`` exposition."""
        return self._request("GET", "/metrics")

    def metrics_prometheus(self) -> str:
        """The Prometheus text exposition (``?format=prometheus``)."""
        return self._request("GET", "/metrics?format=prometheus")

    def trace(self, job_id: str, *, chrome: bool = False) -> dict:
        """The job's distributed span trace.

        Default shape: ``{"job", "trace_id", "complete", "dropped",
        "span_count", "spans": [...]}``; ``chrome=True`` returns a
        Chrome-trace/Perfetto document instead.
        """
        path = f"/jobs/{job_id}/trace"
        if chrome:
            path += "?format=chrome"
        return self._request("GET", path)

    def metric(self, name: str) -> float:
        """One scalar from the text exposition (0.0 when absent)."""
        for line in self.metrics_text().splitlines():
            metric, _, value = line.partition(" ")
            if metric == name:
                return float(value)
        return 0.0

    def bench(self) -> dict:
        return self._request("GET", "/bench")

    def wait(self, job_id: str, *, timeout: float = 120.0,
             poll: float = 0.05) -> dict:
        """Poll until the job is terminal; returns the final snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            snap = self.job(job_id)
            if snap["status"] in ("done", "failed", "cancelled",
                                  "cache_hit", "interrupted"):
                return snap
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snap['status']} after "
                    f"{timeout:g}s")
            time.sleep(poll)

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream the job's SSE events as decoded dicts.

        Blocks until the server closes the stream after the terminal
        ``end`` event; yields every event in order from id 0.
        """
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            resp = conn.getresponse()
            if resp.status >= 400:
                raw = resp.read().decode()
                try:
                    message = json.loads(raw).get("error", raw)
                except ValueError:
                    message = raw
                raise ServiceError(resp.status, message)
            yield from decode_stream(iter(resp.readline, b""))
        finally:
            conn.close()
