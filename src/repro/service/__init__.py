"""Experiment service: submit specs over HTTP, stream results back.

See :mod:`repro.service.app` for the endpoint reference and
``docs/service.md`` for the full API documentation.
"""

from .app import EXECUTOR_KINDS, QUEUE_WAIT_BUCKETS, WALL_BUCKETS, \
    ExperimentService
from .client import ServiceClient, ServiceError
from .jobs import (CACHE_HIT, CANCELLED, DONE, FAILED, INTERRUPTED,
                   PREEMPTED, QUEUED, RUNNING, SUCCESS_STATES,
                   TERMINAL_STATES, Job, JobCancelled, JobPreempted,
                   JobStore)
from .journal import JobJournal
from .queue import JobQueue
from .sse import decode_stream, encode_event

__all__ = [
    "ExperimentService",
    "EXECUTOR_KINDS",
    "QUEUE_WAIT_BUCKETS",
    "WALL_BUCKETS",
    "ServiceClient",
    "ServiceError",
    "Job",
    "JobStore",
    "JobQueue",
    "JobJournal",
    "JobCancelled",
    "JobPreempted",
    "QUEUED",
    "RUNNING",
    "PREEMPTED",
    "DONE",
    "FAILED",
    "CANCELLED",
    "CACHE_HIT",
    "INTERRUPTED",
    "TERMINAL_STATES",
    "SUCCESS_STATES",
    "encode_event",
    "decode_stream",
]
