"""Server-Sent Events encoding and parsing.

One representation on both sides of the wire: an event is a dict
``{"id": int, "event": str, "data": <JSON value>}``.  The server
serializes with :func:`encode_event`; the client feeds response lines
through :func:`decode_stream` and gets the dicts back.  The subset of
the SSE spec implemented is exactly what the service emits — ``id:``,
``event:`` and single-line ``data:`` fields, blank-line terminated —
which keeps both directions trivially auditable in tests.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator

__all__ = ["encode_event", "decode_stream"]


def encode_event(event_id: int, event: str, data: Any) -> bytes:
    """One wire-format SSE event (``data`` is JSON-encoded)."""
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return (f"id: {event_id}\nevent: {event}\ndata: {payload}\n\n"
            .encode())


def decode_stream(lines: Iterable[bytes | str]) -> Iterator[dict[str, Any]]:
    """Parse a stream of SSE lines back into event dicts.

    Accepts bytes or str lines (trailing newlines optional, LF or
    CRLF); yields ``{"id": int | None, "event": str, "data":
    parsed-json}`` per blank-line-terminated event.  Multi-line
    ``data:`` fields are joined with ``\\n`` per the SSE spec before
    JSON parsing; unknown fields and comment lines (``:`` prefix) are
    ignored.  A stream that ends *mid-event* — connection torn down
    before the terminating blank line — flushes the pending event only
    if its accumulated data parses as JSON; a truncated payload is
    dropped rather than raised, since the completed events already
    yielded are all the torn stream actually delivered.
    """
    event_id: int | None = None
    event = "message"
    data_parts: list[str] = []
    for raw in lines:
        line = raw.decode() if isinstance(raw, bytes) else raw
        line = line.rstrip("\r\n")
        if not line:
            if data_parts:
                yield {"id": event_id, "event": event,
                       "data": json.loads("\n".join(data_parts))}
            event_id, event, data_parts = None, "message", []
            continue
        if line.startswith(":"):
            continue
        name, _, value = line.partition(":")
        value = value.removeprefix(" ")
        if name == "id":
            try:
                event_id = int(value)
            except ValueError:
                event_id = None
        elif name == "event":
            event = value
        elif name == "data":
            data_parts.append(value)
    if data_parts:  # stream ended without the final blank line
        try:
            data = json.loads("\n".join(data_parts))
        except ValueError:
            return  # truncated mid-event: drop the torn payload
        yield {"id": event_id, "event": event, "data": data}
