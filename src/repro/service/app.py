"""Asyncio experiment service: specs in over HTTP, results + SSE out.

The long-running half of the harness: a stdlib-only HTTP/1.1 server
(``asyncio.start_server`` + a small hand-rolled request parser — no new
dependencies) that turns a sweep into one POST.  Submitted
:class:`~repro.spec.JobEnvelope` bodies are validated up front (422 on
any :class:`~repro.spec.SpecError`), deduplicated against both the
shared ``.repro_cache/`` store *and* identical in-flight jobs, queued
by priority, executed through the pluggable
:class:`~repro.harness.parallel.Executor` interface, and observable
three ways: polling (``GET /jobs/<id>``), SSE streaming
(``GET /jobs/<id>/events``), and the service-wide ``/metrics``
endpoint built on :class:`repro.obs.MetricsRegistry`.

Endpoints
---------

==========  =======================  =========================================
``POST``    ``/jobs``                submit a spec or job envelope (JSON
                                     body; TOML with a ``...toml`` content
                                     type); ``?priority=N`` overrides the
                                     envelope priority
``GET``     ``/jobs``                all job snapshots, submission order
``GET``     ``/jobs/<id>``           one job snapshot (poll this)
``GET``     ``/jobs/<id>/result``    result payload of a finished job
``GET``     ``/jobs/<id>/events``    ordered, complete SSE stream (status,
                                     per-cell progress, live ``metrics``
                                     ticks); closes after the terminal
                                     ``end`` event
``GET``     ``/jobs/<id>/trace``     the job's distributed span trace
                                     (``?format=chrome`` for a
                                     Perfetto-loadable document)
``DELETE``  ``/jobs/<id>``           cancel (also ``POST /jobs/<id>/cancel``);
                                     ``?preempt=true`` checkpoints a running
                                     job and requeues it as ``preempted``
                                     instead of killing it
``GET``     ``/metrics``             plain-text ``name value`` exposition
                                     (``?format=json`` for full detail,
                                     ``?format=prometheus`` for Prometheus
                                     text exposition)
``GET``     ``/healthz``             liveness + queue depth
``GET``     ``/bench``               the configured kernel benchmark
                                     snapshot (path or URL source, loaded
                                     through the shared bench loader)
==========  =======================  =========================================

Results are digest-identical to ``repro spec run`` on the same spec
file — the job payload carries the same per-cell
``result_to_dict`` encodings and the same ``stable_digest`` the CLI
prints, which is exactly what the service end-to-end tests and the
``service-smoke`` CI job assert.

Cache-hit semantics (the multi-tenant story): a job whose cells are
all already in the store finishes as ``cache_hit`` without touching
the queue; a job identical to one currently queued/running is parked
behind it (``dedup_of``) and served from the store when the primary
lands — N racing clients cost one execution.  Both show up on
``/metrics`` (``service.cells.cache_hits``,
``service.dedupe.inflight_hits``, ``service.jobs.cache_hits``).

Telemetry (PR 9): every job owns a distributed trace — a root ``job``
span opened at submission whose children decompose the job's
wall-clock exactly: ``submit.parse``, per-cell ``cache.probe``\\ s,
``queue.wait`` (enqueue→dequeue, also observed into the
``service.queue.wait_seconds`` histogram), ``sweep.run`` with
``cell.run`` spans opened *inside worker processes* (kernel phase
timings attached) and ``cache.write``\\ s.  ``GET /jobs/<id>/trace``
serves the tree; SSE streams add live per-job ``metrics`` events;
service log lines carry the trace/span ids when JSON logging is on
(``repro serve --log-json``); SIGTERM/SIGINT flush span buffers and a
metrics snapshot to ``--telemetry-dir``.

Durability (``repro serve --state-dir``, see ``docs/checkpoint.md``):
with a state directory, every job transition lands in an append-only
JSONL journal replayed at boot — terminal jobs stay queryable across
restarts, queued/preempted jobs re-enter the queue, and jobs a dead
process left running are requeued to resume from their cells'
periodic simulation checkpoints (written under
``<state-dir>/checkpoints/`` every ``checkpoint_every`` cycles).  The
same checkpoints back ``DELETE /jobs/<id>?preempt=true``: the running
job is checkpointed out of its worker, requeued as ``preempted``, and
finishes later with a result digest identical to an unpreempted run.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import threading
import time
from pathlib import Path
from typing import Any, Callable
from urllib.parse import parse_qsl, unquote

from ..harness.benchdiff import load_bench_source
from ..harness.cache import ResultCache, result_to_dict, stable_digest
from ..harness.checkpoint import CheckpointInterrupt
from ..harness.parallel import (BatchedExecutor, Executor, ParallelSweep,
                                PoolExecutor, SerialExecutor, SweepTask)
from ..obs.export import spans_to_chrome_trace
from ..obs.metrics import MetricsRegistry
from ..obs.spans import DEFAULT_SPAN_CAPACITY, SpanTracer
from ..spec import JobEnvelope, SpecError, SweepSpec
from .jobs import (CACHE_HIT, CANCELLED, DONE, FAILED, INTERRUPTED,
                   PREEMPTED, QUEUED, RUNNING, SUCCESS_STATES, Job,
                   JobCancelled, JobPreempted, JobStore)
from .journal import JobJournal
from .queue import JobQueue
from .sse import encode_event

__all__ = ["ExperimentService", "EXECUTOR_KINDS"]

log = logging.getLogger("repro.service")

#: named executor strategies ``--executor`` accepts
EXECUTOR_KINDS = ("pool", "serial", "batched")

#: checkpoint cadence (cycles) when ``state_dir`` is set and no explicit
#: ``checkpoint_every`` was given; 0 disables checkpointing entirely
DEFAULT_CHECKPOINT_EVERY = 1_000

#: job wall-clock histogram bucket upper edges, seconds
WALL_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0)

#: enqueue→dequeue latency histogram bucket upper edges, seconds
QUEUE_WAIT_BUCKETS = (0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0)

#: # HELP strings for the Prometheus exposition
_METRIC_HELP = {
    "service.jobs.submitted": "Jobs accepted via POST /jobs",
    "service.jobs.completed": "Jobs that finished done",
    "service.jobs.failed": "Jobs that finished failed",
    "service.jobs.cancelled": "Jobs cancelled before or during execution",
    "service.jobs.cache_hits": "Jobs served entirely from the result store",
    "service.cells.executed": "Experiment cells computed by executors",
    "service.cells.cache_hits": "Experiment cells served from the store",
    "service.dedupe.inflight_hits": "Submissions parked behind an "
                                    "identical in-flight job",
    "service.jobs.preempted": "Preemptions: running jobs checkpointed "
                              "out of a worker and requeued",
    "service.jobs.recovered": "Jobs rebuilt from the journal at boot",
    "service.jobs.running": "Jobs currently executing",
    "service.queue.depth": "Jobs currently queued",
    "service.job.wall_seconds": "Job wall-clock from dequeue to terminal "
                                "state",
    "service.queue.wait_seconds": "Job latency from enqueue to dequeue",
}

_REASONS = {200: "OK", 201: "Created", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
            413: "Payload Too Large", 422: "Unprocessable Entity",
            500: "Internal Server Error", 502: "Bad Gateway"}


class _HttpError(Exception):
    """Routed straight into a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class _Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, path: str, query: dict[str, str],
                 headers: dict[str, str], body: bytes) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body


class ExperimentService:
    """The asyncio experiment service (see module docstring).

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (``self.port``
        holds the real one after start).
    workers:
        Concurrent jobs; each runs in its own thread via
        ``asyncio.to_thread`` so the event loop stays responsive.
    executor:
        Scheduling strategy per job: one of :data:`EXECUTOR_KINDS`, an
        :class:`~repro.harness.parallel.Executor` *instance* (shared by
        every job — handy for tests), or a zero-arg factory returning
        one.
    batch_size:
        Replicas per batched-kernel invocation (``executor="batched"``).
    pool_workers:
        Process count per job for ``executor="pool"`` (default: auto).
    cache, use_cache:
        The shared :class:`ResultCache` (default honors
        ``REPRO_CACHE_DIR``) and whether to consult it.
    bench_source:
        Path or URL of a ``BENCH_kernel.json`` snapshot served on
        ``GET /bench`` (404 when unset).
    telemetry_dir:
        Directory that receives ``spans.jsonl`` + ``metrics.json`` on
        shutdown (``repro serve --telemetry-dir``); ``None`` disables
        the flush.
    span_capacity:
        Finished-span bound per job trace (oldest dropped first).
    state_dir:
        Directory for durable service state (``repro serve
        --state-dir``): the append-only job journal replayed at boot
        *and* the per-cell simulation checkpoints that make preemption
        and crash recovery resume mid-run.  ``None`` (default) keeps
        the service fully in-memory, as before.
    checkpoint_every:
        Simulation-checkpoint cadence in cycles for jobs run with a
        ``state_dir`` (default :data:`DEFAULT_CHECKPOINT_EVERY`); ``0``
        disables checkpointing, downgrading preemption to cell
        boundaries and crash recovery of running jobs to
        ``interrupted``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 workers: int = 2,
                 executor: str | Executor | Callable[[], Executor] = "pool",
                 batch_size: int = 8,
                 pool_workers: int | None = None,
                 cache: ResultCache | None = None,
                 use_cache: bool = True,
                 bench_source: str | None = None,
                 max_body: int = 8 * 1024 * 1024,
                 telemetry_dir: str | None = None,
                 span_capacity: int = DEFAULT_SPAN_CAPACITY,
                 state_dir: str | None = None,
                 checkpoint_every: int | None = None) -> None:
        if isinstance(executor, str) and executor not in EXECUTOR_KINDS:
            raise ValueError(f"unknown executor {executor!r}; expected one "
                             f"of {EXECUTOR_KINDS} or an Executor")
        self._host = host
        self._port = port
        self.port: int | None = None
        self.worker_count = max(1, int(workers))
        self._executor = executor
        self._batch_size = batch_size
        self._pool_workers = pool_workers
        self._cache = cache if cache is not None else ResultCache()
        self._use_cache = use_cache
        self._bench_source = bench_source
        self._max_body = max_body
        self._telemetry_dir = telemetry_dir
        self._span_capacity = span_capacity
        self._journal: JobJournal | None = None
        self._checkpoint_dir: Path | None = None
        self._checkpoint_every = (DEFAULT_CHECKPOINT_EVERY
                                  if checkpoint_every is None
                                  else max(0, int(checkpoint_every)))
        if state_dir is not None:
            self._journal = JobJournal(state_dir)
            if self._checkpoint_every:
                self._checkpoint_dir = Path(state_dir) / "checkpoints"

        self.store = JobStore()
        self.queue = JobQueue()
        self.metrics = MetricsRegistry()
        self._running_jobs = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._worker_tasks: list[asyncio.Task] = []
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._start_error: BaseException | None = None

        # pre-create every instrument so /metrics shows explicit zeros
        for name in ("service.jobs.submitted", "service.jobs.completed",
                     "service.jobs.failed", "service.jobs.cancelled",
                     "service.jobs.cache_hits", "service.cells.executed",
                     "service.cells.cache_hits",
                     "service.dedupe.inflight_hits",
                     "service.jobs.preempted", "service.jobs.recovered"):
            self.metrics.counter(name)
        self.metrics.gauge("service.jobs.running")
        self.metrics.gauge("service.queue.depth")
        self.metrics.histogram("service.job.wall_seconds", WALL_BUCKETS)
        self.metrics.histogram("service.queue.wait_seconds",
                               QUEUE_WAIT_BUCKETS)

    # -- lifecycle -----------------------------------------------------------

    async def start_async(self) -> int:
        """Bind, start the worker loops, return the actual port."""
        self._loop = asyncio.get_running_loop()
        self._recover()
        self._server = await asyncio.start_server(
            self._handle_conn, self._host, self._port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._worker_tasks = [asyncio.create_task(self._worker())
                              for _ in range(self.worker_count)]
        return self.port

    def _recover(self) -> None:
        """Replay the job journal into the store (boot, pre-serving).

        Terminal jobs come back queryable (result payloads rebuilt from
        the cache when every cell is still stored, digest-only
        otherwise).  Queued and preempted jobs re-enter the queue.
        Jobs a dead process left ``running`` are requeued when
        checkpointing is on — their cells resume from the last periodic
        checkpoint plus the cache — and finished as ``interrupted``
        when it is off.
        """
        if self._journal is None:
            return
        recovered = self._journal.replay(self.store)
        for job in recovered:
            self.metrics.counter("service.jobs.recovered").inc()
            if job.status == RUNNING:
                if self._checkpoint_dir is None:
                    job.error = ("service restarted mid-run with "
                                 "checkpointing disabled")
                    job.status = INTERRUPTED
                else:
                    job.status = QUEUED
            if job.terminal:
                if (job.status in SUCCESS_STATES
                        and (job.result is None
                             or "cells" not in job.result)):
                    results = self._probe_cache(job)
                    if results is not None:
                        job.result = self._result_payload(job.envelope,
                                                          results)
                job.finished = job.finished or time.time()
                self._publish(job, "end", {"status": job.status,
                                           "recovered": True})
                continue
            self._publish(job, "status", {"status": job.status,
                                          "recovered": True})
            self._enqueue_primary(job)
            log.info("job recovered", extra=self._log_ids(job, {
                "status": job.status}))
        if recovered:
            log.info("journal replayed",
                     extra={"jobs": len(recovered),
                            "path": str(self._journal.path)})

    def request_stop(self) -> None:
        """Ask a running service to shut down gracefully.

        Safe from signal handlers registered on the service's own loop
        (``loop.add_signal_handler`` runs them in the loop thread);
        cross-thread callers should go through :meth:`stop`.
        """
        if self._stop_event is not None:
            self._stop_event.set()

    async def _shutdown(self) -> None:
        for job in self.store.jobs():
            if job.status == RUNNING:
                job.cancel_requested.set()
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        paths = self.flush_telemetry()
        if paths:
            log.info("telemetry flushed", extra={"paths": paths})

    def flush_telemetry(self, directory: str | None = None
                        ) -> dict[str, str] | None:
        """Write span buffers + a metrics snapshot to disk.

        ``spans.jsonl`` holds every retained finished span of every job
        (one JSON object per line, grouped by trace since spans carry
        their trace id); ``metrics.json`` is the full
        :meth:`MetricsRegistry.as_dict` dump.  Returns the written
        paths, or None when no directory is configured.
        """
        d = directory or self._telemetry_dir
        if not d:
            return None
        root = Path(d)
        root.mkdir(parents=True, exist_ok=True)
        spans_path = root / "spans.jsonl"
        with open(spans_path, "w") as fh:
            for job in self.store.jobs():
                if job.span_tracer is None:
                    continue
                for span in job.span_tracer.export():
                    fh.write(json.dumps(span, separators=(",", ":")))
                    fh.write("\n")
        metrics_path = root / "metrics.json"
        self._gauges()
        with open(metrics_path, "w") as fh:
            json.dump(self.metrics.as_dict(), fh, indent=1)
        return {"spans": str(spans_path), "metrics": str(metrics_path)}

    async def run_async(self, *, announce: Callable[[str], None]
                        | None = None) -> None:
        """Start and serve until cancelled (the ``repro serve`` path)."""
        self._stop_event = asyncio.Event()
        await self.start_async()
        if announce is not None:
            announce(f"http://{self._host}:{self.port}")
        try:
            await self._stop_event.wait()
        finally:
            await self._shutdown()

    # threaded wrappers (tests and embedding) ---------------------------------

    def start(self) -> int:
        """Run the service on a daemon thread; returns the bound port."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        started = threading.Event()
        self._thread = threading.Thread(
            target=self._thread_main, args=(started,),
            name="repro-service", daemon=True)
        self._thread.start()
        if not started.wait(15.0):  # pragma: no cover - hang safety
            raise RuntimeError("service failed to start within 15s")
        if self._start_error is not None:
            raise RuntimeError("service failed to start") \
                from self._start_error
        assert self.port is not None
        return self.port

    def _thread_main(self, started: threading.Event) -> None:
        async def main() -> None:
            self._stop_event = asyncio.Event()
            try:
                await self.start_async()
            except BaseException as exc:
                self._start_error = exc
                started.set()
                return
            started.set()
            try:
                await self._stop_event.wait()
            finally:
                await self._shutdown()

        asyncio.run(main())

    def stop(self) -> None:
        """Stop a :meth:`start`-ed service and join its thread."""
        if self._thread is None:
            return
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None and loop.is_running():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(stop_event.set)
        self._thread.join(timeout=30.0)
        self._thread = None

    # -- executors ------------------------------------------------------------

    def _make_executor(self) -> Executor:
        ex = self._executor
        if isinstance(ex, str):
            if ex == "serial":
                return SerialExecutor()
            if ex == "batched":
                return BatchedExecutor(self._batch_size)
            return PoolExecutor(self._pool_workers)
        if isinstance(ex, Executor):
            return ex
        return ex()  # zero-arg factory

    # -- event publication ----------------------------------------------------

    def _publish(self, job: Job, event: str, data: dict[str, Any]) -> None:
        """Append to the job's event history and fan out (loop thread)."""
        entry = {"id": len(job.events), "event": event,
                 "data": dict(data, job=job.id)}
        job.events.append(entry)
        for q in list(job.subscribers):
            q.put_nowait(entry)

    def _publish_threadsafe(self, job: Job, event: str,
                            data: dict[str, Any]) -> None:
        loop = self._loop
        if loop is None:
            return
        with contextlib.suppress(RuntimeError):  # loop closing
            loop.call_soon_threadsafe(self._publish, job, event, data)

    def _gauges(self) -> None:
        self.metrics.gauge("service.queue.depth").set(float(len(self.queue)))
        self.metrics.gauge("service.jobs.running").set(
            float(self._running_jobs))

    @staticmethod
    def _log_ids(job: Job,
                 extra: dict[str, Any] | None = None) -> dict[str, Any]:
        """Log ``extra`` fields: job id + the job's trace/span ids."""
        out = dict(extra or {})
        out["job_id"] = job.id
        if job.root_span is not None:
            out["trace_id"] = job.root_span.context.trace_id
            out["span_id"] = job.root_span.context.span_id
        return out

    # -- job execution --------------------------------------------------------

    @staticmethod
    def _result_payload(envelope: JobEnvelope, results: list) -> dict:
        """Result body, digest-compatible with ``repro spec run``.

        Single cells digest ``result_to_dict(r)``; sweeps digest the
        ``{mechanism: [cells...]}`` series mapping — byte-identical to
        what the CLI prints, so HTTP and local runs compare directly.
        """
        spec = envelope.spec
        cells = [result_to_dict(r) for r in results]
        if isinstance(spec, SweepSpec):
            per_mech = len(cells) // len(spec.mechanisms)
            series = {m: cells[i * per_mech:(i + 1) * per_mech]
                      for i, m in enumerate(spec.mechanisms)}
            digest = stable_digest(series)
            kind = "sweep"
        else:
            digest = stable_digest(cells[0])
            kind = "experiment"
        return {"digest": digest, "kind": kind, "cells": cells}

    def _run_job(self, job: Job) -> tuple[dict, int, int]:
        """Execute ``job`` in the current (worker) thread.

        Returns ``(payload, executed_cells, cache_hit_cells)``.  The
        progress callback raises :class:`JobCancelled` between cells
        when cancellation was requested — cells already computed stay
        in the store (atomic writes), so a cancelled job never leaves
        a torn cache behind.
        """
        tasks = [SweepTask.from_spec(c) for c in job.envelope.cells()]
        t_run = time.monotonic()

        def progress(done: int, total: int, task, result,
                     from_cache: bool) -> None:
            if job.cancel_requested.is_set():
                raise JobCancelled(job.id)
            if job.preempt_requested.is_set():
                raise JobPreempted(job.id)
            job.done_cells = done
            if from_cache:
                job.cache_hit_cells += 1
            self._publish_threadsafe(job, "progress", {
                "done": done, "total": total,
                "from_cache": bool(from_cache),
                "cell": {"mechanism": task.mechanism, "rate": task.rate,
                         "gated_fraction": task.gated_fraction,
                         "seed": task.seed}})
            # live per-job telemetry rides the same SSE stream
            elapsed = time.monotonic() - t_run
            self._publish_threadsafe(job, "metrics", {
                "done": done, "total": total,
                "cache_hit_cells": job.cache_hit_cells,
                "elapsed_s": round(elapsed, 6),
                "cells_per_s": round(done / elapsed, 3) if elapsed else 0.0,
                "queue_wait_s": job.queue_wait_s})

        engine = ParallelSweep(
            use_cache=self._use_cache, cache=self._cache,
            progress=progress, executor=self._make_executor(),
            span_tracer=job.span_tracer,
            span_parent=(job.root_span.context
                         if job.root_span is not None else None),
            checkpoint_every=(self._checkpoint_every
                              if self._checkpoint_dir is not None else None),
            checkpoint_dir=self._checkpoint_dir,
            # mid-cell preemption: in-process executors poll this at
            # checkpoint boundaries (pool workers stay cell-granular)
            interrupt=job.preempt_requested.is_set)
        results = engine.run(tasks)
        payload = self._result_payload(job.envelope, results)
        executed = len(tasks) - engine.last_cache_hits
        return payload, executed, engine.last_cache_hits

    async def _worker(self) -> None:
        while True:
            job_id = await self.queue.get()
            self._gauges()
            job = self.store.get(job_id)
            if job is None or job.status not in (QUEUED, PREEMPTED):
                continue
            if job.cancel_requested.is_set():
                self._finish_job(job, CANCELLED)
                continue
            # a re-dequeued preempted job starts a fresh attempt
            job.preempt_requested.clear()
            if job.enqueued_at is not None:
                job.queue_wait_s = time.monotonic() - job.enqueued_at
                self.metrics.histogram(
                    "service.queue.wait_seconds",
                    QUEUE_WAIT_BUCKETS).observe(job.queue_wait_s)
                if job.queue_span is not None:
                    job.queue_span.set_attribute("queue.wait_seconds",
                                                 job.queue_wait_s)
            job.end_queue_span()
            job.status = RUNNING
            job.started = time.time()
            job.started_seq = self.store.next_run_seq()
            self._running_jobs += 1
            self._gauges()
            self._publish(job, "status", {"status": RUNNING})
            log.info("job started", extra=self._log_ids(job, {
                "queue_wait_s": job.queue_wait_s}))
            if self._journal is not None:
                self._journal.start(job)
            try:
                payload, executed, hits = await asyncio.to_thread(
                    self._run_job, job)
            except JobCancelled:
                self.metrics.counter("service.jobs.cancelled").inc()
                self._finish_job(job, CANCELLED)
            except (JobPreempted, CheckpointInterrupt):
                self._preempt_job(job)
            except asyncio.CancelledError:
                job.cancel_requested.set()
                self._finish_job(job, CANCELLED)
                raise
            except Exception as exc:
                job.error = f"{type(exc).__name__}: {exc}"
                self.metrics.counter("service.jobs.failed").inc()
                self._finish_job(job, FAILED)
            else:
                job.result = payload
                self.metrics.counter("service.cells.executed").inc(executed)
                self.metrics.counter("service.cells.cache_hits").inc(hits)
                self.metrics.counter("service.jobs.completed").inc()
                self.metrics.histogram(
                    "service.job.wall_seconds", WALL_BUCKETS).observe(
                        time.time() - job.started)
                if executed == 0:
                    self.metrics.counter("service.jobs.cache_hits").inc()
                self._finish_job(job, DONE if executed else CACHE_HIT)
            finally:
                self._running_jobs -= 1
                self._gauges()

    def _preempt_job(self, job: Job) -> None:
        """Non-terminal preemption: requeue the job behind its peers.

        Cells already computed sit in the result cache and the cell in
        flight (under an in-process executor) left a checkpoint, so the
        next attempt resumes rather than recomputes; the job keeps its
        dedupe-primary role and its followers.
        """
        job.preempt_requested.clear()
        job.status = PREEMPTED
        job.preemptions += 1
        self.metrics.counter("service.jobs.preempted").inc()
        if self._journal is not None:
            self._journal.preempt(job)
        self._publish(job, "status", {"status": PREEMPTED,
                                      "done": job.done_cells,
                                      "total": job.total_cells})
        log.info("job preempted", extra=self._log_ids(job, {
            "done": job.done_cells, "preemptions": job.preemptions}))
        job.enqueued_at = time.monotonic()
        self.queue.put(job.id, job.priority)
        self._gauges()

    def _finish_job(self, job: Job, status: str) -> None:
        """Terminal transition: bookkeeping, SSE end event, followers."""
        job.status = status
        job.finished = time.time()
        if self._journal is not None:
            self._journal.finish(job)
        key = job.envelope.dedupe_key()
        if self.store.inflight.get(key) == job.id:
            del self.store.inflight[key]
        data: dict[str, Any] = {"status": status,
                                "done": job.done_cells,
                                "total": job.total_cells}
        if job.result is not None:
            data["digest"] = job.result["digest"]
        if job.error is not None:
            data["error"] = job.error
        job.end_queue_span()  # covers cancel-while-queued/parked paths
        if job.root_span is not None and not job.root_span.ended:
            job.root_span.set_attribute("job.status", status)
            job.root_span.set_attribute("job.cells", job.total_cells)
            job.root_span.set_attribute("job.cache_hit_cells",
                                        job.cache_hit_cells)
            if job.result is not None:
                job.root_span.set_attribute("job.digest",
                                            job.result["digest"])
            job.root_span.end(
                status="ok" if status in SUCCESS_STATES else "error")
        log.info("job finished", extra=self._log_ids(job, {
            "status": status, "done": job.done_cells,
            "total": job.total_cells, "error": job.error}))
        self._publish(job, "end", data)

        followers = [self.store.get(fid) for fid in job.followers]
        job.followers = []
        live = [f for f in followers
                if f is not None and f.status == QUEUED
                and not f.cancel_requested.is_set()]
        if not live:
            self._gauges()
            return
        if status in SUCCESS_STATES:
            # every cell of the primary is now in the store; serve the
            # followers from it (each counts as a full cache hit)
            for f in live:
                if not self._try_serve_from_cache(f):
                    self._enqueue_primary(f)  # store bypassed/disabled
        else:
            # primary failed or was cancelled: promote the first live
            # follower to primary, keep the rest parked behind it
            new_primary, rest = live[0], live[1:]
            new_primary.dedup_of = None
            self._enqueue_primary(new_primary)
            for f in rest:
                f.dedup_of = new_primary.id
                new_primary.followers.append(f.id)
        self._gauges()

    # -- dedupe + cache probing -----------------------------------------------

    def _probe_cache(self, job: Job) -> list | None:
        """All cached results for the job's cells, or None on any miss."""
        if not self._use_cache:
            return None
        tracer = job.span_tracer
        parent = job.root_span.context if job.root_span is not None else None
        results = []
        for cell in job.envelope.cells():
            hit = self._cache.get(cell.cache_key(), tracer=tracer,
                                  parent=parent)
            if hit is None:
                return None
            results.append(hit)
        return results

    def _try_serve_from_cache(self, job: Job) -> bool:
        """Finish ``job`` as a cache hit when every cell is stored."""
        results = self._probe_cache(job)
        if results is None:
            return False
        job.result = self._result_payload(job.envelope, results)
        job.done_cells = job.total_cells
        job.cache_hit_cells = job.total_cells
        self.metrics.counter("service.jobs.cache_hits").inc()
        self.metrics.counter("service.cells.cache_hits").inc(
            job.total_cells)
        self._finish_job(job, CACHE_HIT)
        return True

    def _enqueue_primary(self, job: Job) -> None:
        job.end_queue_span()  # a promoted follower leaves dedupe.parked
        if job.span_tracer is not None and job.root_span is not None:
            job.queue_span = job.span_tracer.start(
                "queue.wait", parent=job.root_span.context,
                attributes={"queue.priority": job.priority})
        job.enqueued_at = time.monotonic()
        self.store.inflight[job.envelope.dedupe_key()] = job.id
        self.queue.put(job.id, job.priority)
        self._gauges()

    # -- request handlers -----------------------------------------------------

    def _submit(self, req: _Request) -> tuple[int, dict]:
        ctype = req.headers.get("content-type", "")
        tracer = SpanTracer(capacity=self._span_capacity)
        root = tracer.start("job", attributes={"http.method": req.method,
                                               "http.path": req.path})
        try:
            text = req.body.decode()
        except UnicodeDecodeError as exc:
            root.end(status="error")
            raise _HttpError(400, f"body is not valid UTF-8: {exc}") \
                from None
        try:
            with tracer.span("submit.parse", parent=root.context,
                             attributes={"bytes": len(req.body)}):
                envelope = JobEnvelope.from_payload(text,
                                                    toml="toml" in ctype)
                if "priority" in req.query:
                    try:
                        priority = int(req.query["priority"])
                    except ValueError:
                        raise SpecError(
                            f"priority query parameter must be an integer, "
                            f"got {req.query['priority']!r}") from None
                    envelope = JobEnvelope(spec=envelope.spec,
                                           priority=priority,
                                           tags=envelope.tags)
        except SpecError as exc:
            # no job exists for a 422, so its trace dies with it
            root.end(status="error")
            raise _HttpError(422, str(exc)) from None
        job = self.store.new_job(envelope)
        job.span_tracer = tracer
        job.root_span = root
        root.set_attribute("job.id", job.id)
        if self._journal is not None:
            self._journal.submit(job)
        self.metrics.counter("service.jobs.submitted").inc()
        self._publish(job, "status", {"status": QUEUED,
                                      "total": job.total_cells})
        log.info("job submitted", extra=self._log_ids(job, {
            "cells": job.total_cells, "priority": job.priority}))
        if self._try_serve_from_cache(job):
            return 201, job.snapshot()
        key = envelope.dedupe_key()
        primary = self.store.get(self.store.inflight.get(key, ""))
        if primary is not None and primary.status in (QUEUED, RUNNING):
            job.dedup_of = primary.id
            primary.followers.append(job.id)
            self.metrics.counter("service.dedupe.inflight_hits").inc()
            # parked time is queue time: one span from park to promotion
            # or store-serve, ended by _finish_job/_enqueue_primary
            job.queue_span = tracer.start(
                "dedupe.parked", parent=root.context,
                attributes={"dedup_of": primary.id})
            log.info("job deduplicated", extra=self._log_ids(job, {
                "dedup_of": primary.id}))
        else:
            self._enqueue_primary(job)
        return 201, job.snapshot()

    def _cancel(self, job: Job, *, preempt: bool = False) -> tuple[int, dict]:
        if job.terminal:
            return 409, {"error": f"job {job.id} is already {job.status}"}
        if preempt:
            if job.status != RUNNING:
                return 409, {"error": f"job {job.id} is {job.status}; "
                                      f"only running jobs can be preempted"}
            # flag it; the worker observes at the next cell boundary, or
            # mid-cell at the next checkpoint under in-process executors
            job.preempt_requested.set()
            return 202, dict(job.snapshot(), preempting=True)
        if job.status in (QUEUED, PREEMPTED):
            job.cancel_requested.set()
            self.queue.cancel(job.id)
            if job.dedup_of is not None:
                primary = self.store.get(job.dedup_of)
                if primary is not None and job.id in primary.followers:
                    primary.followers.remove(job.id)
            self.metrics.counter("service.jobs.cancelled").inc()
            self._finish_job(job, CANCELLED)
            return 200, job.snapshot()
        # running: flag it; the worker observes between cells
        job.cancel_requested.set()
        return 202, dict(job.snapshot(), cancelling=True)

    def _job_result(self, job: Job) -> tuple[int, dict]:
        if job.status in SUCCESS_STATES:
            if job.result is None or "cells" not in job.result:
                # journal-replayed success whose cells have left the
                # cache: the digest (when recorded) is all that remains
                return 409, {"error": f"result for job {job.id} is no "
                                      f"longer available after restart",
                             "digest": (job.result or {}).get("digest")}
            return 200, dict(job.result, id=job.id, status=job.status)
        if job.terminal:
            return 409, {"error": f"job {job.id} finished as "
                                  f"{job.status}", "detail": job.error}
        return 409, {"error": f"job {job.id} is still {job.status}"}

    def _metrics_body(self, fmt: str | None) -> tuple[bytes, str]:
        self._gauges()
        if fmt == "json":
            return (json.dumps(self.metrics.as_dict(), indent=2).encode(),
                    "application/json")
        if fmt == "prometheus":
            return (self.metrics.prometheus_text(_METRIC_HELP).encode(),
                    "text/plain; version=0.0.4; charset=utf-8")
        lines = [f"{name} {value}"
                 for name, value in
                 sorted(self.metrics.scalar_snapshot().items())]
        return ("\n".join(lines) + "\n").encode(), "text/plain"

    def _trace_payload(self, job: Job, fmt: str | None) -> dict:
        """The ``GET /jobs/<id>/trace`` body (span list or Chrome doc)."""
        tracer = job.span_tracer
        spans = tracer.export() if tracer is not None else []
        if fmt == "chrome":
            return spans_to_chrome_trace(spans)
        trace_id = (job.root_span.context.trace_id
                    if job.root_span is not None else None)
        return {"job": job.id, "trace_id": trace_id,
                "complete": job.terminal,
                "dropped": tracer.dropped if tracer is not None else 0,
                "span_count": len(spans), "spans": spans}

    def _bench(self) -> tuple[int, dict]:
        if not self._bench_source:
            return 404, {"error": "no bench snapshot configured (start the "
                                  "service with --bench-snapshot)"}
        try:
            doc = load_bench_source(self._bench_source)
        except Exception as exc:
            return 502, {"error": f"cannot load bench snapshot from "
                                  f"{self._bench_source!r}: {exc}"}
        return 200, {"source": self._bench_source, "snapshot": doc}

    # -- HTTP plumbing --------------------------------------------------------

    async def _read_request(self, reader: asyncio.StreamReader) \
            -> _Request | None:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as exc:
            raise _HttpError(400, f"oversized request line: {exc}") from None
        if not line:
            return None
        try:
            method, target, _version = line.decode().split(None, 2)
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            hline = await reader.readline()
            if hline in (b"\r\n", b"\n", b""):
                break
            name, _, value = hline.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        path, _, qs = target.partition("?")
        query = {k: v for k, v in parse_qsl(qs)}
        length = int(headers.get("content-length", "0") or 0)
        if length > self._max_body:
            raise _HttpError(413, f"body of {length} bytes exceeds the "
                                  f"{self._max_body} byte limit")
        body = await reader.readexactly(length) if length else b""
        return _Request(method.upper(), unquote(path), query, headers, body)

    @staticmethod
    def _response(status: int, body: bytes, content_type: str) -> bytes:
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n")
        return head.encode() + body

    @classmethod
    def _json_response(cls, status: int, obj: Any) -> bytes:
        body = (json.dumps(obj, indent=2) + "\n").encode()
        return cls._response(status, body, "application/json")

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            try:
                req = await self._read_request(reader)
                if req is None:
                    return
                await self._dispatch(req, writer)
            except _HttpError as exc:
                writer.write(self._json_response(exc.status,
                                                 {"error": exc.message}))
                await writer.drain()
            except (asyncio.IncompleteReadError, ConnectionError):
                pass  # client went away mid-request
            except Exception as exc:  # never let one connection kill us
                with contextlib.suppress(Exception):
                    writer.write(self._json_response(
                        500, {"error": f"{type(exc).__name__}: {exc}"}))
                    await writer.drain()
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, req: _Request,
                        writer: asyncio.StreamWriter) -> None:
        segs = [s for s in req.path.split("/") if s]

        async def send_json(status: int, obj: Any) -> None:
            writer.write(self._json_response(status, obj))
            await writer.drain()

        if not segs:
            await send_json(200, {
                "service": "repro-experiment-service",
                "endpoints": ["/jobs", "/jobs/<id>", "/jobs/<id>/result",
                              "/jobs/<id>/events", "/jobs/<id>/trace",
                              "/metrics", "/healthz", "/bench"]})
            return
        if segs == ["healthz"]:
            if req.method != "GET":
                raise _HttpError(405, "healthz is GET-only")
            await send_json(200, {"status": "ok", "jobs": len(self.store),
                                  "queued": len(self.queue),
                                  "running": self._running_jobs})
            return
        if segs == ["metrics"]:
            if req.method != "GET":
                raise _HttpError(405, "metrics is GET-only")
            body, ctype = self._metrics_body(req.query.get("format"))
            writer.write(self._response(200, body, ctype))
            await writer.drain()
            return
        if segs == ["bench"]:
            if req.method != "GET":
                raise _HttpError(405, "bench is GET-only")
            status, obj = self._bench()
            await send_json(status, obj)
            return
        if segs[0] != "jobs":
            raise _HttpError(404, f"no such endpoint: {req.path}")

        if len(segs) == 1:
            if req.method == "POST":
                status, obj = self._submit(req)
                await send_json(status, obj)
            elif req.method == "GET":
                await send_json(200, {"jobs": [j.snapshot()
                                               for j in self.store.jobs()]})
            else:
                raise _HttpError(405, f"{req.method} not allowed on /jobs")
            return

        job = self.store.get(segs[1])
        if job is None:
            raise _HttpError(404, f"no such job: {segs[1]}")
        if len(segs) == 2:
            if req.method == "GET":
                await send_json(200, job.snapshot())
            elif req.method == "DELETE":
                status, obj = self._cancel(
                    job, preempt=req.query.get("preempt", "").lower()
                    in ("true", "1"))
                await send_json(status, obj)
            else:
                raise _HttpError(405,
                                 f"{req.method} not allowed on /jobs/<id>")
            return
        if len(segs) == 3 and segs[2] == "cancel" and req.method == "POST":
            status, obj = self._cancel(job)
            await send_json(status, obj)
            return
        if len(segs) == 3 and segs[2] == "result" and req.method == "GET":
            status, obj = self._job_result(job)
            await send_json(status, obj)
            return
        if len(segs) == 3 and segs[2] == "events" and req.method == "GET":
            await self._stream_events(job, writer)
            return
        if len(segs) == 3 and segs[2] == "trace" and req.method == "GET":
            await send_json(200, self._trace_payload(
                job, req.query.get("format")))
            return
        raise _HttpError(404, f"no such endpoint: {req.path}")

    async def _stream_events(self, job: Job,
                             writer: asyncio.StreamWriter) -> None:
        """Replay the job's full event history, then go live until the
        terminal ``end`` event — ordered and complete by construction."""
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode())
        q: asyncio.Queue = asyncio.Queue()
        job.subscribers.append(q)
        backlog = list(job.events)  # no await since subscribe: atomic
        try:
            ended = False
            for entry in backlog:
                writer.write(encode_event(entry["id"], entry["event"],
                                          entry["data"]))
                ended = ended or entry["event"] == "end"
            await writer.drain()
            while not ended:
                entry = await q.get()
                writer.write(encode_event(entry["id"], entry["event"],
                                          entry["data"]))
                await writer.drain()
                ended = entry["event"] == "end"
        finally:
            if q in job.subscribers:
                job.subscribers.remove(q)
