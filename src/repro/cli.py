"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``info``
    Print the Table-I configuration and the power model calibration.
``synthetic``
    Run one synthetic-traffic experiment and print its metrics.
``sweep``
    Latency/power vs. gated fraction for chosen mechanisms (Fig 6/9
    style).
``parsec``
    Run PARSEC profiles on the full-system CMP (Fig 8c/d style).
``trace``
    Record a synthetic workload to a trace file, or replay one.
``run``
    Run one synthetic experiment with the observability layer attached:
    structured event traces (JSONL and/or Chrome-trace for Perfetto) and
    sampled metrics (CSV/JSON).  See ``docs/observability.md``.
``analyze``
    Turn a recorded JSONL trace (plus optional metrics CSV) into an
    attribution report: per-packet journeys, latency decomposition,
    congestion heat, handshake digest.  See ``docs/analysis.md``.
``profile``
    Run one experiment with the kernel phase profiler attached and
    report where the wall time went (handshake / delivery / evaluate /
    sampler).
``bench diff``
    Compare two ``BENCH_kernel.json`` snapshots cell by cell and flag
    ratio regressions.
``spec``
    Validate, hash, or execute a declarative experiment/sweep spec file
    (``*.toml`` / ``*.json``; see ``docs/specs.md``).
``checkpoint``
    Inspect or resume a run checkpoint left behind by an interrupted
    ``repro sweep`` / ``repro spec run --checkpoint-every`` invocation
    (see ``docs/checkpoint.md``).

Every ``choices=``/default in this module is derived from the component
registries (:mod:`repro.registry`) — plugin components loaded via
``REPRO_PLUGINS`` appear automatically.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from .config import NoCConfig, PowerConfig, table1_config
from .registry import KERNELS, MECHANISMS, PATTERNS, load_plugins


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--mechanism", "-m", default="gflov",
                   choices=MECHANISMS.names())
    p.add_argument("--rate", type=float, default=0.02,
                   help="injection rate, flits/cycle/node")
    p.add_argument("--pattern", default="uniform", choices=PATTERNS.names())
    p.add_argument("--gated", type=float, default=0.0,
                   help="fraction of cores power-gated")
    p.add_argument("--warmup", type=int, default=None)
    p.add_argument("--measure", type=int, default=None)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--height", type=int, default=8)


def _add_pattern_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--pattern-arg", action="append", default=[],
                   dest="pattern_args", metavar="KEY=VALUE",
                   help="extra pattern-factory argument, e.g. "
                        "--pattern-arg hotspots=[27] --pattern-arg "
                        "weight=0.4 (repeatable; the value is parsed as "
                        "JSON, falling back to a plain string)")


def _parse_pattern_args(pairs: list[str]) -> dict:
    """``["k=v", ...]`` -> ``{"k": parsed_v}`` (JSON value, else string)."""
    import json

    out: dict = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(
                f"--pattern-arg expects KEY=VALUE, got {pair!r}")
        try:
            out[key] = json.loads(value)
        except json.JSONDecodeError:
            out[key] = value
    return out


def _interrupted(command: str, args: argparse.Namespace) -> int:
    """Shared Ctrl-C epilogue for checkpointable run commands.

    The periodic checkpoints are written atomically *during* the run,
    so by the time the interrupt lands the latest one is already on
    disk; this only records a resume manifest next to them and tells
    the user how to continue.  Exit code 130 = terminated by SIGINT.
    """
    import shlex

    print(file=sys.stderr)
    every = getattr(args, "checkpoint_every", 0)
    words = sys.argv[1:] if sys.argv[1:] else [command]
    resume = "repro " + shlex.join(words)
    if every:
        from pathlib import Path

        from .atomicio import atomic_write_json

        ckdir = Path(args.checkpoint_dir)
        atomic_write_json(ckdir / "resume.json", {
            "command": resume,
            "checkpoint_dir": str(ckdir),
            "checkpoint_every": every,
        })
        print(f"repro {command}: interrupted — latest periodic "
              f"checkpoints kept under {ckdir}", file=sys.stderr)
        print(f"resume with: {resume}", file=sys.stderr)
    else:
        print(f"repro {command}: interrupted (run with --checkpoint-every "
              f"to make runs resumable)", file=sys.stderr)
    return 130


def cmd_info(args: argparse.Namespace) -> int:
    from .power.dsent import router_breakdown
    from .power.overhead import flov_overhead_report

    cfg = table1_config()
    pcfg = PowerConfig()
    print("Table I testbed configuration:")
    print(f"  mesh                {cfg.width}x{cfg.height}")
    print(f"  buffers             {cfg.buffer_depth} flits/VC")
    print(f"  VCs                 {cfg.num_vcs} regular + "
          f"{cfg.escape_vcs} escape per vnet")
    print(f"  router pipeline     {cfg.router_latency} cycles")
    print(f"  link                {cfg.link_latency} cycle, "
          f"{cfg.flit_width_bytes} B")
    print(f"  wakeup latency      {cfg.wakeup_latency} cycles")
    print(f"  gating overhead     {pcfg.gating_overhead_j * 1e12:.1f} pJ")
    bd = router_breakdown(cfg)
    print("\nDSENT-like power calibration (32 nm, 2 GHz):")
    print(f"  router static       {bd.baseline_total * 1e3:.2f} mW "
          f"(buffers {bd.buffers * 1e3:.2f}, xbar {bd.crossbar * 1e3:.2f}, "
          f"alloc {bd.allocators * 1e3:.2f}, clock {bd.clock_other * 1e3:.2f})")
    print(f"  FLOV sleep residual {bd.sleep_residual * 1e3:.3f} mW")
    print("\nFLOV overhead analysis (paper SS V-A):")
    print(flov_overhead_report(cfg).render())
    return 0


def _print_result(r) -> None:
    """Human-readable summary of an ExperimentResult (synthetic/spec run)."""
    print(f"mechanism          {r.mechanism}")
    print(f"pattern/rate       {r.pattern} @ {r.rate}")
    print(f"gated fraction     {r.gated_fraction:.0%} "
          f"({r.sleeping_routers} routers asleep)")
    print(f"packets measured   {r.packets} ({r.escaped} via escape)")
    print(f"avg latency        {r.avg_latency:.2f} cycles")
    b = r.breakdown
    print(f"  breakdown        router {b.router:.1f} | link {b.link:.1f} | "
          f"serialization {b.serialization:.1f} | flov {b.flov:.1f} | "
          f"contention {b.contention:.1f}")
    print(f"throughput         {r.throughput:.4f} flits/cycle/node")
    print(f"power              static {r.static_w * 1e3:.1f} mW | "
          f"dynamic {r.dynamic_w * 1e3:.1f} mW | "
          f"total {r.total_w * 1e3:.1f} mW")


def cmd_synthetic(args: argparse.Namespace) -> int:
    from .harness import run_synthetic
    from .spec import SpecError

    try:
        pattern_kwargs = _parse_pattern_args(args.pattern_args)
        r = run_synthetic(args.mechanism, pattern=args.pattern,
                          pattern_kwargs=pattern_kwargs,
                          rate=args.rate,
                          gated_fraction=args.gated, warmup=args.warmup,
                          measure=args.measure, seed=args.seed,
                          width=args.width, height=args.height)
    except (SpecError, ValueError) as exc:
        print(f"repro synthetic: error: {exc}", file=sys.stderr)
        return 2
    _print_result(r)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from .harness import (BatchedSweep, ParallelSweep, series_table,
                          sweep_fractions)

    mechs = args.mechanisms.split(",")
    fracs = [float(f) for f in args.fractions.split(",")]

    def progress(done: int, total: int, task, result,
                 from_cache: bool) -> None:
        tag = "cache" if from_cache else "run"
        print(f"\r[{done}/{total}] {tag:>5} {task.mechanism:>8} "
              f"gated={task.gated_fraction:.1f}", end="", file=sys.stderr)
        if done == total:
            print(file=sys.stderr)

    ck = {}
    if args.checkpoint_every:
        ck = {"checkpoint_every": args.checkpoint_every,
              "checkpoint_dir": args.checkpoint_dir}
    if args.kernel == "batched":
        engine = BatchedSweep(args.batch_size, use_cache=not args.no_cache,
                              progress=progress if args.verbose else None,
                              **ck)
        workers = f"batch size {engine.batch_size}"
    else:
        engine = ParallelSweep(args.jobs, use_cache=not args.no_cache,
                               progress=progress if args.verbose else None,
                               **ck)
        workers = f"{engine.max_workers} workers"
    try:
        series = sweep_fractions(mechs, fracs, pattern=args.pattern,
                                 rate=args.rate, seed=args.seed,
                                 warmup=args.warmup, measure=args.measure,
                                 engine=engine)
    except KeyboardInterrupt:
        return _interrupted("sweep", args)
    print(f"sweep: {len(mechs) * len(fracs)} tasks, "
          f"{engine.last_cache_hits} cache hits, "
          f"executed {engine.last_mode} ({workers})")
    print()
    print(series_table("avg latency (cycles)", series, "avg_latency"))
    print()
    print(series_table("static power (mW)", series, "static_w", scale=1e3))
    print()
    print(series_table("total power (mW)", series, "total_w", scale=1e3))
    return 0


def cmd_parsec(args: argparse.Namespace) -> int:
    from .fullsystem import PARSEC, CmpSystem

    benches = args.benchmarks.split(",") if args.benchmarks else list(PARSEC)
    mechs = args.mechanisms.split(",")
    print(f"{'benchmark':>14} {'mech':>9} {'runtime':>9} {'static uJ':>10} "
          f"{'total uJ':>9} {'sleep':>6}")
    for bench in benches:
        for mech in mechs:
            system = CmpSystem(bench, mech,
                               instructions_per_core=args.instructions,
                               seed=args.seed)
            r = system.run(max_cycles=args.max_cycles)
            flag = "" if r.finished else "  (cycle cap!)"
            print(f"{bench:>14} {mech:>9} {r.runtime_cycles:9d} "
                  f"{r.static_j * 1e6:10.2f} {r.total_j * 1e6:9.2f} "
                  f"{r.sleeping_routers:6d}{flag}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .gating.schedule import StaticGating
    from .noc.network import Network
    from .traffic import (TracePlayer, TraceRecorder, TrafficGenerator,
                          get_pattern, load_trace)

    cfg = NoCConfig(mechanism=args.mechanism, width=args.width,
                    height=args.height, seed=args.seed)
    net = Network(cfg)
    net.set_gating(StaticGating(cfg.num_routers, args.gated, seed=args.seed))
    if args.replay:
        with open(args.replay) as fh:
            trace = load_trace(fh)
        player = TracePlayer(net, trace)
        horizon = (trace[-1][0] if trace else 0) + 20_000
        for _ in range(horizon):
            player.tick()
            net.step()
            if player.exhausted and net.network_drained():
                break
        print(f"replayed {player.replayed} packets; "
              f"avg latency {net.stats.avg_latency:.2f}")
        return 0
    rec = TraceRecorder()
    rec.attach(net)
    gen = TrafficGenerator(net, get_pattern(args.pattern, cfg), args.rate,
                           seed=args.seed)
    gen.run(args.measure or 10_000)
    with open(args.record, "w") as fh:
        rec.save(fh)
    print(f"recorded {len(rec.records)} packets to {args.record}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from .harness import run_synthetic
    from .obs import (DEFAULT_CAPACITY, EVENT_KINDS, Tracer,
                      write_chrome_trace, write_jsonl)

    tracer = None
    if args.trace or args.chrome_trace:
        kinds = (args.trace_kinds.split(",") if args.trace_kinds else None)
        if kinds:
            unknown = sorted(set(kinds) - set(EVENT_KINDS))
            if unknown:
                print(f"repro run: error: unknown event kind(s) "
                      f"{', '.join(unknown)} for --trace-kinds "
                      f"(choose from {', '.join(EVENT_KINDS)})",
                      file=sys.stderr)
                return 2
        tracer = Tracer(args.trace_capacity or DEFAULT_CAPACITY, kinds=kinds)
    try:
        pattern_kwargs = _parse_pattern_args(args.pattern_args)
        r = run_synthetic(args.mechanism, pattern=args.pattern,
                          pattern_kwargs=pattern_kwargs, rate=args.rate,
                          gated_fraction=args.gated, warmup=args.warmup,
                          measure=args.measure, seed=args.seed,
                          width=args.width, height=args.height,
                          kernel=args.kernel or None,
                          tracer=tracer,
                          metrics_path=args.metrics or None,
                          metrics_every=args.metrics_every)
    except ValueError as exc:
        print(f"repro run: error: {exc}", file=sys.stderr)
        return 2
    print(f"mechanism          {r.mechanism}")
    print(f"pattern/rate       {r.pattern} @ {r.rate}")
    print(f"gated fraction     {r.gated_fraction:.0%} "
          f"({r.sleeping_routers} routers asleep)")
    print(f"packets measured   {r.packets}")
    print(f"avg latency        {r.avg_latency:.2f} cycles")
    if tracer is not None:
        if tracer.dropped > 0:
            print(f"repro run: WARNING: tracer ring overflowed — "
                  f"{tracer.dropped} oldest events were dropped; the "
                  f"exported trace is truncated at the start.\n"
                  f"  remedies: raise --trace-capacity (currently "
                  f"{tracer.capacity}) or restrict --trace-kinds to the "
                  f"events you need", file=sys.stderr)
        print(f"trace              {tracer.recorded} events recorded "
              f"({tracer.dropped} dropped by the ring)")
        if args.trace:
            write_jsonl(tracer.events(), args.trace)
            print(f"  jsonl            {args.trace}")
        if args.chrome_trace:
            n = write_chrome_trace(tracer.events(), args.chrome_trace)
            print(f"  chrome trace     {args.chrome_trace} ({n} entries; "
                  f"load in Perfetto / chrome://tracing)")
    if args.metrics:
        print(f"metrics            {args.metrics} "
              f"(sampled every {args.metrics_every or 'default'} cycles)")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from .obs import analyze_trace, load_jsonl, load_metrics_csv

    try:
        events = load_jsonl(args.trace)
    except OSError as exc:
        print(f"repro analyze: error: cannot read trace: {exc}",
              file=sys.stderr)
        return 2
    metrics_rows = None
    if args.metrics:
        try:
            metrics_rows = load_metrics_csv(args.metrics)
        except OSError as exc:
            print(f"repro analyze: error: cannot read metrics: {exc}",
                  file=sys.stderr)
            return 2
    report = analyze_trace(events, metrics_rows,
                           router_latency=args.router_latency,
                           warmup=args.warmup,
                           width=args.width or 0, height=args.height or 0)
    if args.json:
        text = json.dumps(report.as_dict(args.top_k), indent=2)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.out}")
        else:
            print(text)
    else:
        text = report.render(markdown=args.md, top_k=args.top_k)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.out}")
        else:
            print(text)
    if report.journeys.orphan_pids:
        print(f"repro analyze: WARNING: {len(report.journeys.orphan_pids)} "
              f"ejected packets had no inject record (trace truncated by "
              f"ring wraparound?)", file=sys.stderr)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .obs import profile_run

    r = profile_run(args.mechanism, pattern=args.pattern, rate=args.rate,
                    gated_fraction=args.gated, warmup=args.warmup,
                    measure=args.measure, seed=args.seed,
                    kernel=args.kernel or None,
                    metrics_every=args.metrics_every,
                    width=args.width, height=args.height)
    print(r.render())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(r.as_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    if r.coverage < args.min_coverage:
        print(f"repro profile: WARNING: phase timers cover only "
              f"{r.coverage:.1%} of kernel wall time "
              f"(expected >= {args.min_coverage:.0%})", file=sys.stderr)
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .harness import diff_bench

    try:
        diff = diff_bench(args.old, args.new, tolerance=args.tolerance)
    except (OSError, ValueError, KeyError) as exc:
        print(f"repro bench diff: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diff.as_dict(), indent=2))
    else:
        print(diff.render(markdown=args.md))
    return 0 if diff.ok else 1


def cmd_spec(args: argparse.Namespace) -> int:
    from .spec import ExperimentSpec, SpecError, SweepSpec, load_spec_file

    try:
        spec = load_spec_file(args.file)
    except SpecError as exc:
        print(f"repro spec {args.spec_command}: error: {exc}",
              file=sys.stderr)
        return 2
    kind = type(spec).__name__

    if args.spec_command == "validate":
        cells = len(spec.expand()) if isinstance(spec, SweepSpec) else 1
        print(f"{args.file}: OK ({kind}, {cells} experiment "
              f"cell{'s' if cells != 1 else ''}, "
              f"hash {spec.stable_hash()[:16]})")
        return 0

    if args.spec_command == "hash":
        print(spec.stable_hash())
        return 0

    # run
    if args.kernel:
        spec = dataclasses.replace(spec, kernel=args.kernel)
    ck = {}
    if args.checkpoint_every:
        ck = {"checkpoint_every": args.checkpoint_every,
              "checkpoint_dir": args.checkpoint_dir}
    if isinstance(spec, ExperimentSpec):
        from .harness import run_spec
        from .harness.cache import result_to_dict, stable_digest

        if ck and spec.workload is None:
            from .harness.checkpoint import checkpoint_path
            path = checkpoint_path(args.checkpoint_dir, spec)
            if path.exists():
                print(f"repro spec run: resuming from checkpoint {path}",
                      file=sys.stderr)
                ck["resume_from"] = path
        try:
            r = run_spec(spec, **ck)
        except KeyboardInterrupt:
            return _interrupted("spec run", args)
        except ValueError as exc:
            print(f"repro spec run: error: {exc}", file=sys.stderr)
            return 2
        if spec.workload is not None:
            flag = "" if r.finished else "  (cycle cap!)"
            print(f"workload           {spec.workload} ({spec.mechanism})")
            print(f"runtime            {r.runtime_cycles} cycles{flag}")
            print(f"energy             static {r.static_j * 1e6:.2f} uJ | "
                  f"total {r.total_j * 1e6:.2f} uJ")
            print(f"sleeping routers   {r.sleeping_routers}")
            return 0
        _print_result(r)
        print(f"result digest      {stable_digest(result_to_dict(r))}")
        return 0

    from .harness import BatchedSweep, ParallelSweep, run_sweep_spec, \
        series_table
    from .harness.cache import result_to_dict, stable_digest

    if args.kernel == "batched":
        engine = BatchedSweep(args.batch_size, use_cache=not args.no_cache,
                              **ck)
        workers = f"batch size {engine.batch_size}"
    else:
        engine = ParallelSweep(args.jobs, use_cache=not args.no_cache, **ck)
        workers = f"{engine.max_workers} workers"
    try:
        series = run_sweep_spec(spec, engine=engine)
    except KeyboardInterrupt:
        return _interrupted("spec run", args)
    cells = sum(len(rs) for rs in series.values())
    print(f"sweep: {cells} cells, {engine.last_cache_hits} cache hits, "
          f"executed {engine.last_mode} ({workers})")
    print()
    print(series_table("avg latency (cycles)", series, "avg_latency"))
    print()
    print(series_table("total power (mW)", series, "total_w", scale=1e3))
    # one digest over every cell, in cell order: lets CI assert
    # cross-kernel equality of a whole sweep with a single grep
    digest = stable_digest(
        {m: [result_to_dict(r) for r in rs] for m, rs in series.items()})
    print()
    print(f"results digest     {digest}")
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    import os
    from pathlib import Path

    from .atomicio import read_json_checked
    from .noc.snapshot import SnapshotError, check_schema

    # never unlink on inspect/resume: a hand-named file is the user's
    payload = read_json_checked(Path(args.file), label="checkpoint",
                                check=check_schema, discard=False)
    if payload is None:
        print(f"repro checkpoint {args.checkpoint_command}: error: "
              f"{args.file} is not a readable checkpoint", file=sys.stderr)
        return 2
    kind = payload.get("kind")

    if args.checkpoint_command == "inspect":
        print(f"file               {args.file}")
        print(f"kind               {kind} (schema v{payload['schema']})")
        if kind == "run_spec":
            s = payload["spec"]
            net = payload["net"]
            print(f"spec               {s.get('mechanism')} "
                  f"{s.get('pattern')} @ {s.get('rate')} "
                  f"gated={s.get('gated_fraction')} seed={s.get('seed')}")
            print(f"phase              {payload['phase']} "
                  f"(done {payload['done']} cycles)")
            print(f"sim cycle          {net['cycle']}")
            print(f"in-flight packets  {len(net.get('packets', []))}")
        elif kind == "run_spec_batch":
            batch = payload["batch"]
            nets = batch["nets"]
            live = sum(1 for n in nets if n is not None)
            finished = sum(1 for r in payload["results"] if r is not None)
            print(f"replicas           {len(nets)} "
                  f"({live} live, {finished} finished)")
            print(f"sim cycle          {batch['cycle']}")
            for i, s in enumerate(payload.get("specs", [])):
                state = ("finished" if payload["results"][i] is not None
                         else "draining" if payload["draining"][i]
                         else "running")
                print(f"  [{i}] {s.get('mechanism'):>8} "
                      f"gated={s.get('gated_fraction')} "
                      f"seed={s.get('seed')}  {state}")
        return 0

    # resume: finish the frozen run and print the usual result summary
    from .harness.cache import result_to_dict, stable_digest
    from .spec import ExperimentSpec, SpecError

    ck = {}
    if args.checkpoint_every:
        ck = {"checkpoint_every": args.checkpoint_every,
              "checkpoint_dir": Path(args.file).parent}
    try:
        if kind == "run_spec":
            from .harness import run_spec
            spec = ExperimentSpec.from_dict(payload["spec"])
            r = run_spec(spec, resume_from=payload, **ck)
            _print_result(r)
            print(f"result digest      {stable_digest(result_to_dict(r))}")
        elif kind == "run_spec_batch":
            if "specs" not in payload:
                print("repro checkpoint resume: error: batch checkpoint "
                      "carries no spec definitions; resume by re-running "
                      "the original sweep command", file=sys.stderr)
                return 2
            from .noc.batched import run_spec_batch
            specs = [ExperimentSpec.from_dict(d) for d in payload["specs"]]
            results = run_spec_batch(specs, resume_from=payload, **ck)
            for s, r in zip(specs, results):
                print(f"{s.mechanism:>9} gated={s.gated_fraction:.1f} "
                      f"seed={s.seed}  "
                      f"digest {stable_digest(result_to_dict(r))}")
        else:
            print(f"repro checkpoint resume: error: cannot resume a "
                  f"{kind!r} checkpoint", file=sys.stderr)
            return 2
    except KeyboardInterrupt:
        print("\nrepro checkpoint resume: interrupted; the checkpoint "
              "file is kept — resume again with the same command",
              file=sys.stderr)
        return 130
    except (SnapshotError, SpecError, ValueError) as exc:
        print(f"repro checkpoint resume: error: {exc}", file=sys.stderr)
        return 2
    # consumed: the run completed, so the frozen state is spent
    try:
        os.unlink(args.file)
    except OSError:
        pass
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    if args.verify_command == "modelcheck":
        from .faults.modelcheck import ModelConfig, check_model

        cfg = ModelConfig(
            width=args.width, height=args.height,
            generalized=args.mechanism == "gflov",
            gated=tuple(int(n) for n in args.gated.split(",") if n != ""),
            regated=(tuple(int(n) for n in args.regated.split(",")
                           if n != "")
                     if args.regated is not None else None),
            mutant=args.mutant or None,
            max_states=args.max_states)
        result = check_model(cfg)
        print(result.summary())
        for v in result.violations:
            print(f"\n[{v.kind}] {v.detail}")
            print("counterexample:")
            for i, line in enumerate(v.trace):
                print(f"  {i:3d}  {line}")
        return 0 if result.ok else 1

    # soak
    from .faults.injector import FaultPlan
    from .faults.soak import FaultSoakSpec, run_fault_soak
    from .harness import ParallelSweep

    specs = [FaultSoakSpec(
                 mechanism=m, seed=args.seed + i,
                 burst_cycles=args.cycles, epochs=args.epochs,
                 plan=FaultPlan(seed=args.seed + i, hs_drop=args.hs_drop,
                                hs_dup=args.hs_dup, hs_delay=args.hs_delay,
                                link_kill=args.link_kill,
                                power_reset=args.power_reset))
             for m in args.mechanisms.split(",")
             for i in range(args.runs)]
    engine = ParallelSweep(args.jobs)
    reports = engine.map_callable(run_fault_soak, specs)
    failures = 0
    for rep in reports:
        spec = rep.spec
        tag = f"{spec.mechanism} seed={spec.seed}"
        faults = sum(rep.faults.values())
        if rep.ok:
            print(f"  ok   {tag}: {faults} faults injected, quiescent "
                  f"at cycle {rep.cycles}, invariants hold")
            continue
        failures += 1
        print(f"  FAIL {tag}: {faults} faults injected")
        for v in rep.violations:
            print(f"       invariant: {v}")
        for line in rep.diagnosis:
            print(f"       liveness: {line}")
        print(f"       replay: {spec}")
    print(f"{len(reports) - failures}/{len(reports)} soaks passed")
    return 0 if failures == 0 else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .service import ExperimentService

    if args.log_json:
        from .obs.logging import configure_json_logging
        configure_json_logging()

    svc = ExperimentService(
        args.host, args.port, workers=args.workers,
        executor=args.executor, batch_size=args.batch_size,
        use_cache=not args.no_cache,
        bench_source=args.bench_snapshot or None,
        telemetry_dir=args.telemetry_dir or None,
        state_dir=args.state_dir or None,
        checkpoint_every=args.checkpoint_every)

    async def main() -> None:
        # graceful shutdown: SIGTERM/SIGINT stop the serve loop, which
        # flushes span buffers + the metrics snapshot (--telemetry-dir)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, svc.request_stop)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # platform without loop signal support
        await svc.run_async(announce=lambda url: print(
            f"repro service listening on {url}", flush=True))

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        # fallback when the signal handler could not be installed
        print("repro serve: interrupted, shutting down", file=sys.stderr)
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError

    try:
        with open(args.file) as fh:
            text = fh.read()
    except OSError as exc:
        print(f"repro submit: error: {exc}", file=sys.stderr)
        return 2
    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    try:
        snap = client.submit_text(text, toml=args.file.endswith(".toml"),
                                  priority=args.priority)
    except ServiceError as exc:
        print(f"repro submit: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro submit: cannot reach service at "
              f"{args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    job_id = snap["id"]
    print(f"job                {job_id} (priority {snap['priority']}, "
          f"{snap['total_cells']} cell"
          f"{'s' if snap['total_cells'] != 1 else ''})")
    if args.no_wait:
        print(f"status             {snap['status']}")
        return 0
    snap = client.wait(job_id, timeout=args.timeout)
    print(f"status             {snap['status']} "
          f"({snap['cache_hit_cells']}/{snap['total_cells']} cells from "
          f"cache)")
    if snap.get("trace_id"):
        print(f"trace              {snap['trace_id']} "
              f"(GET /jobs/{job_id}/trace)")
    if snap["status"] not in ("done", "cache_hit"):
        if snap.get("error"):
            print(f"repro submit: job {job_id} failed: {snap['error']}",
                  file=sys.stderr)
        return 1
    result = client.result(job_id)
    # same label + digest the local 'repro spec run' prints, so the two
    # paths are directly comparable with a grep
    label = ("results digest" if result.get("kind") == "sweep"
             else "result digest")
    print(f"{label:<19}{result['digest']}")
    return 0


def _add_checkpoint_args(p: argparse.ArgumentParser) -> None:
    from .harness.checkpoint import DEFAULT_CHECKPOINT_DIR

    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="write a resumable checkpoint of each in-flight "
                        "cell every N cycles (0 = off); an interrupted "
                        "run resumes automatically when the same command "
                        "is re-run (see docs/checkpoint.md)")
    p.add_argument("--checkpoint-dir", default=DEFAULT_CHECKPOINT_DIR,
                   help=f"where checkpoint files live "
                        f"(default {DEFAULT_CHECKPOINT_DIR})")


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="Fly-Over (FLOV) NoC power-gating reproduction")
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print configuration & power calibration")

    from .harness.sweep import FIGURE_MECHANISMS

    p = sub.add_parser("synthetic", help="run one synthetic experiment")
    _add_common(p)
    _add_pattern_arg(p)

    p = sub.add_parser("sweep", help="sweep gated fractions (Fig 6/9)")
    _add_common(p)
    p.add_argument("--mechanisms", default=",".join(FIGURE_MECHANISMS))
    p.add_argument("--fractions", default="0.0,0.2,0.4,0.6,0.8")
    p.add_argument("--jobs", "-j", type=int, default=None,
                   help="worker processes (default: auto / $REPRO_JOBS)")
    p.add_argument("--kernel", default="",
                   choices=[""] + list(KERNELS.names()),
                   help="simulation kernel; 'batched' steps cells as "
                        "in-process replica batches instead of pooling")
    p.add_argument("--batch-size", type=int, default=8,
                   help="replicas per batched-kernel invocation "
                        "(default 8; only with --kernel batched)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk result cache")
    p.add_argument("--verbose", "-v", action="store_true",
                   help="print per-task progress to stderr")
    _add_checkpoint_args(p)

    p = sub.add_parser("parsec", help="full-system PARSEC runs (Fig 8c/d)")
    p.add_argument("--benchmarks", default="")
    p.add_argument("--mechanisms",
                   default=f"{FIGURE_MECHANISMS[0]},{FIGURE_MECHANISMS[-1]}")
    p.add_argument("--instructions", type=int, default=600)
    p.add_argument("--max-cycles", type=int, default=300_000)
    p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("trace", help="record/replay packet traces")
    _add_common(p)
    p.add_argument("--record", default="trace.txt",
                   help="output file when recording")
    p.add_argument("--replay", default="",
                   help="trace file to replay instead of recording")

    p = sub.add_parser(
        "run", help="run one experiment with tracing/metrics attached")
    _add_common(p)
    _add_pattern_arg(p)
    p.add_argument("--kernel", default="",
                   choices=[""] + list(KERNELS.names()),
                   help="simulation kernel (default: $REPRO_KERNEL)")
    p.add_argument("--trace", default="",
                   help="write structured events as JSONL to this path")
    p.add_argument("--chrome-trace", default="",
                   help="write a Perfetto/chrome://tracing JSON trace")
    p.add_argument("--trace-kinds", default="",
                   help="comma-separated event kinds to record (default all)")
    p.add_argument("--trace-capacity", type=int, default=0,
                   help="tracer ring capacity in events (default 2^20)")
    p.add_argument("--metrics", default="",
                   help="write sampled metrics (CSV, or JSON for *.json)")
    p.add_argument("--metrics-every", type=int, default=None,
                   help="sampling cadence in cycles (default 200)")

    p = sub.add_parser(
        "analyze", help="attribution report from a recorded JSONL trace")
    p.add_argument("trace", help="JSONL trace from 'repro run --trace'")
    p.add_argument("--metrics", default="",
                   help="sampled metrics CSV from the same run")
    fmt = p.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true",
                     help="emit the machine-readable JSON report")
    fmt.add_argument("--md", action="store_true",
                     help="render the report as Markdown")
    p.add_argument("--out", default="",
                   help="write the report to a file instead of stdout")
    p.add_argument("--warmup", type=int, default=0,
                   help="warmup cycles of the traced run (default 0; must "
                        "match for the attribution to reconcile)")
    p.add_argument("--router-latency", type=int, default=3,
                   help="router pipeline depth of the traced run (default 3)")
    p.add_argument("--width", type=int, default=0,
                   help="mesh width (default: inferred from node ids)")
    p.add_argument("--height", type=int, default=0,
                   help="mesh height (default: inferred from node ids)")
    p.add_argument("--top-k", type=int, default=8,
                   help="hotspot table depth (default 8)")

    p = sub.add_parser(
        "profile", help="kernel phase profile of one experiment")
    _add_common(p)
    p.add_argument("--kernel", default="",
                   choices=[""] + list(KERNELS.names()),
                   help="simulation kernel (default: $REPRO_KERNEL)")
    p.add_argument("--metrics-every", type=int, default=None,
                   help="also attach a sampler so its phase cost shows up")
    p.add_argument("--json", default="",
                   help="write the profile as JSON to this path")
    p.add_argument("--min-coverage", type=float, default=0.9,
                   help="fail (exit 1) when the phase timers cover less "
                        "than this fraction of kernel wall time")

    p = sub.add_parser(
        "bench", help="benchmark snapshot tooling")
    bsub = p.add_subparsers(dest="bench_command", required=True)
    p = bsub.add_parser(
        "diff", help="compare two BENCH_kernel.json snapshots")
    p.add_argument("old", help="recorded snapshot (e.g. BENCH_kernel.json)")
    p.add_argument("new", help="freshly measured snapshot")
    p.add_argument("--tolerance", type=float, default=0.30,
                   help="allowed fractional dense/active ratio drop "
                        "(default 0.30, matching the CI gate)")
    fmt = p.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true",
                     help="emit the machine-readable diff")
    fmt.add_argument("--md", action="store_true",
                     help="render the diff as a Markdown table")

    p = sub.add_parser(
        "verify", help="fault-injection verification of the FLOV handshake")
    vsub = p.add_subparsers(dest="verify_command", required=True)
    vp = vsub.add_parser(
        "modelcheck",
        help="exhaustive handshake model check on a small mesh")
    vp.add_argument("--mechanism", default="gflov",
                    choices=("rflov", "gflov"))
    vp.add_argument("--width", type=int, default=2)
    vp.add_argument("--height", type=int, default=2)
    vp.add_argument("--gated", default="0,3",
                    help="comma-separated gated node ids (default 0,3)")
    vp.add_argument("--regated", default=None,
                    help="gated set after an adversarial schedule change "
                         "(default: no schedule change)")
    vp.add_argument("--mutant", default="",
                    help="check a deliberately broken FSM variant "
                         "(drop_grant, dup_drain_done, lost_wake_abort); "
                         "expected to FAIL")
    vp.add_argument("--max-states", type=int, default=2_000_000)
    vp = vsub.add_parser(
        "soak", help="randomized fault soaks with quiescence checking")
    vp.add_argument("--mechanisms", default="gflov,rflov,rp,nord")
    vp.add_argument("--runs", type=int, default=2,
                    help="soaks per mechanism (default 2)")
    vp.add_argument("--seed", type=int, default=0)
    vp.add_argument("--cycles", type=int, default=2500,
                    help="faulty burst length before the heal+drain phase")
    vp.add_argument("--epochs", type=int, default=0,
                    help="random gating epochs (0 = static schedule)")
    vp.add_argument("--hs-drop", type=float, default=0.1)
    vp.add_argument("--hs-dup", type=float, default=0.05)
    vp.add_argument("--hs-delay", type=float, default=0.15)
    vp.add_argument("--link-kill", type=float, default=0.002)
    vp.add_argument("--power-reset", type=float, default=0.003)
    vp.add_argument("--jobs", "-j", type=int, default=None,
                    help="worker processes (default: auto / $REPRO_JOBS)")

    p = sub.add_parser(
        "serve", help="run the experiment service (HTTP submit + SSE)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765,
                   help="listen port (0 = ephemeral; default 8765)")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrently running jobs (default 2)")
    p.add_argument("--executor", default="pool",
                   choices=("pool", "serial", "batched"),
                   help="how each job's cells are executed (default pool)")
    p.add_argument("--batch-size", type=int, default=8,
                   help="replicas per batched-kernel invocation "
                        "(default 8; only with --executor batched)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the shared on-disk result cache")
    p.add_argument("--bench-snapshot", default="",
                   help="path or URL of a BENCH_kernel.json served on "
                        "GET /bench")
    p.add_argument("--log-json", action="store_true",
                   help="structured JSON logging; every service line "
                        "carries the job's trace/span ids")
    p.add_argument("--telemetry-dir", default="",
                   help="flush span buffers + a metrics snapshot here on "
                        "shutdown (SIGTERM/SIGINT included)")
    p.add_argument("--state-dir", default="",
                   help="durable service state: the job journal (replayed "
                        "at boot) and job checkpoints live here; without "
                        "it the job table is in-memory only")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="N",
                   help="cycles between job checkpoints under --state-dir "
                        "(default 1000; 0 disables checkpointing, so a "
                        "restart marks running jobs interrupted and "
                        "DELETE ?preempt=true falls back to cell-boundary "
                        "preemption)")

    p = sub.add_parser(
        "submit", help="submit a spec file to a running service")
    p.add_argument("file", help="*.toml or *.json spec file "
                                "(see docs/specs.md)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument("--priority", type=int, default=None,
                   help="queue priority, -100..100 (higher runs first)")
    p.add_argument("--no-wait", action="store_true",
                   help="print the job id and return immediately")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="seconds to wait for the job (default 600)")

    p = sub.add_parser(
        "spec", help="validate / hash / run declarative spec files")
    ssub = p.add_subparsers(dest="spec_command", required=True)
    for name, text in (
            ("validate", "parse a spec file and registry-check every field"),
            ("hash", "print the spec's canonical SHA-256 stable hash"),
            ("run", "execute the spec (experiment, sweep, or workload)")):
        sp = ssub.add_parser(name, help=text)
        sp.add_argument("file", help="*.toml or *.json spec file "
                                     "(see docs/specs.md)")
        if name == "run":
            sp.add_argument("--jobs", "-j", type=int, default=None,
                            help="worker processes for sweep specs "
                                 "(default: auto / $REPRO_JOBS)")
            sp.add_argument("--kernel", default="",
                            choices=[""] + list(KERNELS.names()),
                            help="override the spec's simulation kernel; "
                                 "'batched' runs sweep cells as in-process "
                                 "replica batches")
            sp.add_argument("--batch-size", type=int, default=8,
                            help="replicas per batched-kernel invocation "
                                 "(default 8; only with --kernel batched)")
            sp.add_argument("--no-cache", action="store_true",
                            help="bypass the on-disk result cache")
            _add_checkpoint_args(sp)

    p = sub.add_parser(
        "checkpoint", help="inspect or resume run checkpoints")
    csub = p.add_subparsers(dest="checkpoint_command", required=True)
    cp = csub.add_parser(
        "inspect", help="summarize a checkpoint file without running it")
    cp.add_argument("file", help="ckpt-*.json left by an interrupted run")
    cp = csub.add_parser(
        "resume", help="finish the run a checkpoint froze and print its "
                       "result (digest-identical to an uninterrupted run)")
    cp.add_argument("file", help="ckpt-*.json left by an interrupted run")
    cp.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                    help="keep writing checkpoints every N cycles while "
                         "finishing (default: off — run to completion)")
    return ap


def main(argv: list[str] | None = None) -> int:
    load_plugins()  # REPRO_PLUGINS components appear in choices/registries
    args = build_parser().parse_args(argv)
    handler = {
        "info": cmd_info,
        "synthetic": cmd_synthetic,
        "sweep": cmd_sweep,
        "parsec": cmd_parsec,
        "trace": cmd_trace,
        "run": cmd_run,
        "analyze": cmd_analyze,
        "profile": cmd_profile,
        "bench": cmd_bench,
        "spec": cmd_spec,
        "checkpoint": cmd_checkpoint,
        "verify": cmd_verify,
        "serve": cmd_serve,
        "submit": cmd_submit,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
