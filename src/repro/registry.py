"""Typed component registries: the single source of component names.

Every pluggable component family in the simulator — gating
*mechanisms*, traffic *patterns*, PARSEC *workloads*, simulation
*kernels*, and OS gating *schedules* — is named in exactly one place:
the :class:`Registry` instances defined here.  Every other layer
(``NoCConfig`` validation, :class:`~repro.noc.network.Network`
construction, the experiment spec, the CLI's ``choices=`` lists, the
benchmark grids) performs a thin registry lookup, so adding a component
means registering it once and every layer picks it up automatically.

Registration styles
-------------------

* **Lazy entries** (used for mechanisms and kernels) are declared below
  with :meth:`Registry.register_lazy`; the implementing module is only
  imported when the entry is first resolved, so importing
  ``repro.registry`` stays cheap.
* **Self-registration** (used for patterns, workloads and schedules):
  the home module calls :meth:`Registry.register` at import time, and
  the registry carries a ``populate`` hook naming that module so the
  first lookup triggers the import.

Error contract
--------------

* Registering a name twice raises :class:`DuplicateComponentError`.
* Looking up an unknown name raises :class:`UnknownComponentError`
  whose message lists the valid choices.  Both are ``ValueError``
  subclasses, so existing ``except ValueError`` call sites keep
  working.

Plugins
-------

Third-party components register themselves through the
``REPRO_PLUGINS`` environment variable: a comma-separated list of
importable module names.  Each module is imported exactly once (on the
first failed lookup, or eagerly via :func:`load_plugins`) and is
expected to call ``register`` on the registries it extends::

    # my_patterns.py
    from repro.registry import PATTERNS

    @PATTERNS.register("diagonal")
    def make_diagonal(cfg):
        def pattern(src, active, rng):
            ...
        return pattern

    $ REPRO_PLUGINS=my_patterns repro synthetic --pattern diagonal

See ``docs/specs.md`` for a worked example.
"""

from __future__ import annotations

import importlib
import os
import warnings
from typing import Any, Callable, Generic, Iterator, TypeVar

T = TypeVar("T")

_MISSING = object()


class DuplicateComponentError(ValueError):
    """A component name was registered twice in the same registry."""


class UnknownComponentError(ValueError):
    """A lookup named a component the registry does not know.

    The message always lists the valid choices.
    """


class Registry(Generic[T]):
    """An ordered name -> component mapping with lazy entries.

    Parameters
    ----------
    kind:
        Human-readable component family name, used in error messages
        (``"mechanism"``, ``"traffic pattern"``, ...).
    populate:
        Optional module name imported on the first lookup; the module
        registers its components at import time (self-registration).
    """

    def __init__(self, kind: str, *, populate: str | None = None) -> None:
        self.kind = kind
        self._populate = populate
        self._populated = populate is None
        #: resolved entries, in registration order
        self._entries: dict[str, T] = {}
        #: lazy entries: name -> (module, attribute)
        self._lazy: dict[str, tuple[str, str]] = {}
        #: insertion order across both entry kinds
        self._order: list[str] = []

    # -- registration ---------------------------------------------------------

    def _check_new(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise TypeError(f"{self.kind} name must be a non-empty string, "
                            f"got {name!r}")
        if name in self._entries or name in self._lazy:
            raise DuplicateComponentError(
                f"{self.kind} {name!r} is already registered")

    def register(self, name: str, obj: Any = _MISSING) -> Any:
        """Register ``obj`` under ``name``; usable as a decorator.

        ``register(name, obj)`` registers directly and returns ``obj``;
        ``@register(name)`` registers the decorated object.
        """
        if obj is _MISSING:
            def decorator(target: T) -> T:
                self.register(name, target)
                return target
            return decorator
        self._check_new(name)
        self._entries[name] = obj
        self._order.append(name)
        return obj

    def register_lazy(self, name: str, module: str, attr: str) -> None:
        """Register ``module:attr`` to be imported on first resolution."""
        self._check_new(name)
        self._lazy[name] = (module, attr)
        self._order.append(name)

    # -- population -----------------------------------------------------------

    def _ensure_populated(self) -> None:
        if not self._populated:
            # flip first: the module's own imports may look things up
            self._populated = True
            importlib.import_module(self._populate)  # type: ignore[arg-type]

    # -- lookup ---------------------------------------------------------------

    def get(self, name: str) -> T:
        """The component registered under ``name``.

        Resolves lazy entries (importing their module), consults
        ``REPRO_PLUGINS`` on a miss, and raises
        :class:`UnknownComponentError` listing the valid choices when
        the name is still unknown.
        """
        self._ensure_populated()
        if name not in self._entries and name not in self._lazy:
            load_plugins()
        try:
            return self._entries[name]
        except KeyError:
            pass
        try:
            module, attr = self._lazy[name]
        except KeyError:
            raise UnknownComponentError(
                f"unknown {self.kind} {name!r}; expected one of "
                f"{sorted(self._order)}") from None
        obj = getattr(importlib.import_module(module), attr)
        self._entries[name] = obj
        return obj

    def names(self) -> tuple[str, ...]:
        """All registered names, in registration order.

        Does *not* trigger plugin loading (call :func:`load_plugins`
        first to include plugin components); does trigger the
        ``populate`` import so self-registering families are complete.
        """
        self._ensure_populated()
        return tuple(self._order)

    def items(self) -> Iterator[tuple[str, T]]:
        """``(name, component)`` pairs in registration order (resolves
        every lazy entry)."""
        for name in self.names():
            yield name, self.get(name)

    def __contains__(self, name: object) -> bool:
        self._ensure_populated()
        if name in self._entries or name in self._lazy:
            return True
        load_plugins()
        return name in self._entries or name in self._lazy

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_populated()
        return len(self._order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Registry {self.kind}: {self.names()}>"


# -- plugin loading -----------------------------------------------------------

#: modules already imported through REPRO_PLUGINS (guards re-imports and
#: reentrant loads while a plugin module is mid-import)
_loaded_plugins: set[str] = set()
_loading = False


def load_plugins(env: str | None = None) -> tuple[str, ...]:
    """Import the modules named in ``REPRO_PLUGINS`` (comma-separated).

    Each module is imported at most once per process; at import time it
    registers its components on the registries below.  A module that
    fails to import is reported as a :class:`RuntimeWarning` and
    skipped — a broken plugin never takes the simulator down.  Returns
    the names of the modules imported *by this call*.
    """
    global _loading
    spec = os.environ.get("REPRO_PLUGINS", "") if env is None else env
    if not spec or _loading:
        return ()
    imported: list[str] = []
    _loading = True
    try:
        for mod in spec.split(","):
            mod = mod.strip()
            if not mod or mod in _loaded_plugins:
                continue
            _loaded_plugins.add(mod)
            try:
                importlib.import_module(mod)
            except Exception as exc:  # noqa: BLE001 - isolate plugin faults
                warnings.warn(f"REPRO_PLUGINS: could not import {mod!r}: "
                              f"{exc}", RuntimeWarning, stacklevel=2)
            else:
                imported.append(mod)
    finally:
        _loading = False
    return tuple(imported)


# -- the registries -----------------------------------------------------------

#: gating mechanisms: name -> Mechanism subclass (lazy; registration
#: order defines the canonical MECHANISMS tuple in repro.config)
MECHANISMS: Registry[type] = Registry("mechanism")
MECHANISMS.register_lazy("baseline", "repro.noc.mechanism",
                         "BaselineMechanism")
MECHANISMS.register_lazy("rp", "repro.baselines.router_parking",
                         "RouterParkingMechanism")
MECHANISMS.register_lazy("rflov", "repro.core.flov", "RFlovMechanism")
MECHANISMS.register_lazy("gflov", "repro.core.flov", "GFlovMechanism")
MECHANISMS.register_lazy("nord", "repro.baselines.nord", "NordMechanism")

#: traffic patterns: name -> factory ``(cfg, **kwargs) -> PatternFn``
#: (self-registered by repro.traffic.patterns)
PATTERNS: Registry[Callable[..., Any]] = Registry(
    "traffic pattern", populate="repro.traffic.patterns")

#: PARSEC workload profiles: name -> WorkloadProfile
#: (self-registered by repro.fullsystem.workloads)
WORKLOADS: Registry[Any] = Registry(
    "PARSEC workload", populate="repro.fullsystem.workloads")

#: simulation kernels: name -> Network step-method attribute (str) or a
#: callable ``(network) -> None``; plugin kernels register callables
KERNELS: Registry[Any] = Registry("simulation kernel")
KERNELS.register("active", "_step_active")
KERNELS.register("dense", "_step_dense")
# ``batched`` aliases the active step for a solo Network (a batch of one
# is just activity-driven execution); cross-replica batching lives in
# repro.noc.batched / repro.harness.parallel.BatchedSweep
KERNELS.register("batched", "_step_active")

#: gating-schedule builders: name -> ``(cfg, args: dict) -> GatingSchedule``
#: (self-registered by repro.gating.schedule)
SCHEDULES: Registry[Callable[..., Any]] = Registry(
    "gating schedule", populate="repro.gating.schedule")
